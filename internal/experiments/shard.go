package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bugs"
	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/vm"
)

// The shard experiment measures the multi-process campaign fleet
// (internal/shard): the whole suite placed by a coordinator and driven
// by P worker processes sharing one backend, against the P=1 baseline.
// Sketches are byte-identical across process counts by construction —
// every pass verifies that against a single-process core run and fails
// loudly on divergence — so the experiment reports aggregate throughput
// and the fairness of the placement hash, plus a chaos pass that kills
// a worker mid-campaign and proves the survivors' takeover changes
// nothing.

// ShardRow is one process count's measurement.
type ShardRow struct {
	Procs  int     `json:"procs"`
	WallMS float64 `json:"wall_ms"`
	// TotalRuns is the production runs the whole fleet executed;
	// RunsPerSec is that total over the pass's wall time.
	TotalRuns  int     `json:"total_runs"`
	RunsPerSec float64 `json:"runs_per_sec"`
	// Fairness is Jain's index over per-worker executed runs: 1.0 means
	// the placement hash spread the suite's work evenly.
	Fairness      float64 `json:"fairness"`
	PerWorkerRuns []int   `json:"per_worker_runs"`
	// Identical reports that every fleet-produced sketch byte-matched
	// the single-process baseline (the pass fails before reporting
	// otherwise; recorded so the artifact carries the claim).
	Identical bool `json:"identical"`
}

// ShardChaos is the kill-a-worker pass: one worker is halted without
// releasing its leases (a SIGKILL leaves exactly that) and the
// survivors must take its campaigns over from the last durable
// checkpoint generation.
type ShardChaos struct {
	Procs  int    `json:"procs"`
	Victim string `json:"victim"`
	// VictimCampaigns is how many campaigns the victim owned when it
	// died; Takeovers is how many campaigns the survivors stole (>= 1
	// or the pass fails); Resumed is how many takeovers restored from a
	// checkpoint generation rather than starting over.
	VictimCampaigns int     `json:"victim_campaigns"`
	Takeovers       int     `json:"takeovers"`
	Resumed         int     `json:"resumed"`
	Identical       bool    `json:"identical"`
	WallMS          float64 `json:"wall_ms"`
}

// ShardResult is the full shard experiment, serialized by -json.
type ShardResult struct {
	Experiment string      `json:"experiment"`
	GoMaxProcs int         `json:"gomaxprocs"`
	Bugs       []string    `json:"bugs"`
	Procs      []int       `json:"procs"`
	Rows       []ShardRow  `json:"rows"`
	Chaos      *ShardChaos `json:"chaos"`
}

// shardTenant is one suite bug prepared for fleet passes: discovery ran
// once up front, and the single-process baseline sketch is the byte
// oracle every fleet pass must reproduce.
type shardTenant struct {
	bug      *bugs.Bug
	cfg      core.Config
	report   *vm.FailureReport
	disc     int
	iters    int
	baseline []byte
}

// shardFleet drives P workers over one shared backend until every
// campaign has a done record (or a worker errors), halting the victim
// worker (if any) after its first round without releasing leases.
type shardFleet struct {
	tenant  string
	workers []*shard.Worker
	victim  int // index into workers, -1 for none
}

func (f *shardFleet) run(coord *shard.Coordinator, tenants []shardTenant) (time.Duration, error) {
	var (
		stop    atomic.Bool
		wg      sync.WaitGroup
		errOnce sync.Once
		werr    error
	)
	t0 := time.Now()
	for i, w := range f.workers {
		wg.Add(1)
		go func(i int, w *shard.Worker) {
			defer wg.Done()
			rounds := 0
			for !stop.Load() {
				live, err := w.Round()
				if err != nil {
					errOnce.Do(func() { werr = fmt.Errorf("worker %s: %w", w.ID(), err) })
					stop.Store(true)
					return
				}
				rounds++
				if i == f.victim && rounds >= 1 {
					// SIGKILL stand-in: stop driving, leases stay put.
					return
				}
				if live == 0 {
					time.Sleep(2 * time.Millisecond)
				}
			}
		}(i, w)
	}
	for !stop.Load() {
		done := 0
		for _, tn := range tenants {
			rec, err := coord.Done(f.tenant, tn.bug.Name)
			if err != nil {
				errOnce.Do(func() { werr = fmt.Errorf("done poll: %w", err) })
				stop.Store(true)
				break
			}
			if rec != nil {
				done++
			}
		}
		if done == len(tenants) {
			stop.Store(true)
		}
		if !stop.Load() {
			time.Sleep(5 * time.Millisecond)
		}
	}
	wall := time.Since(t0)
	wg.Wait()
	return wall, werr
}

// verifyFleet checks every done record against the baseline bytes.
func verifyFleet(coord *shard.Coordinator, tenant string, tenants []shardTenant) error {
	for _, tn := range tenants {
		rec, err := coord.Done(tenant, tn.bug.Name)
		if err != nil {
			return fmt.Errorf("%s: done: %w", tn.bug.Name, err)
		}
		if rec == nil {
			return fmt.Errorf("%s: no done record after fleet pass", tn.bug.Name)
		}
		if rec.Err != "" {
			return fmt.Errorf("%s: fleet diagnosis failed on worker %s: %s", tn.bug.Name, rec.Worker, rec.Err)
		}
		if !bytes.Equal(rec.Sketch, tn.baseline) {
			return fmt.Errorf("%s: fleet sketch (worker %s) diverged from the single-process baseline", tn.bug.Name, rec.Worker)
		}
	}
	return nil
}

// newShardFleet builds P workers over a fresh fleet on b.
func newShardFleet(b store.Backend, root, tenant string, procs int, ttl time.Duration, tenants []shardTenant) (*shard.Coordinator, *shardFleet, error) {
	coord, err := shard.NewCoordinator(b, root, procs, true)
	if err != nil {
		return nil, nil, err
	}
	cfgFor := make(map[string]core.Config, len(tenants))
	for _, tn := range tenants {
		cfgFor[tn.bug.Name] = tn.cfg
	}
	configFor := func(bug string) (core.Config, error) {
		cfg, ok := cfgFor[bug]
		if !ok {
			return core.Config{}, fmt.Errorf("unknown bug %q", bug)
		}
		return cfg, nil
	}
	for _, tn := range tenants {
		if _, err := coord.Assign(shard.Assignment{
			Tenant: tenant, Bug: tn.bug.Name,
			Report: tn.report, DiscoveryRuns: tn.disc,
		}); err != nil {
			return nil, nil, fmt.Errorf("assign %s: %w", tn.bug.Name, err)
		}
	}
	fleet := &shardFleet{tenant: tenant, victim: -1}
	for i := 0; i < procs; i++ {
		w, err := shard.NewWorker(shard.WorkerOptions{
			Backend: b, Root: root,
			ID: fmt.Sprintf("w%d", i+1), Index: i, Shards: procs,
			LeaseTTL: ttl, Width: 1, NoFsync: true,
			ConfigFor: configFor,
		})
		if err != nil {
			return nil, nil, err
		}
		fleet.workers = append(fleet.workers, w)
	}
	return coord, fleet, nil
}

// Shard runs the sharded-fleet experiment over the given process counts
// (nil = {1, 2, 4}): per count, the suite is placed on a fresh fleet
// and driven to completion, and every sketch must byte-match the
// single-process core baseline. A final chaos pass kills one worker
// after its first round and requires the survivors to finish its
// campaigns identically.
func Shard(suite []*bugs.Bug, procs []int) (*ShardResult, error) {
	if suite == nil {
		suite = bugs.All()
	}
	if len(procs) == 0 {
		procs = []int{1, 2, 4}
	}
	res := &ShardResult{
		Experiment: "shard",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Procs:      procs,
	}

	var tenants []shardTenant
	for _, b := range suite {
		res.Bugs = append(res.Bugs, b.Name)
		cfg := b.GistConfig()
		cfg.Features = core.AllFeatures()
		cfg.Label = "bench/" + b.Name
		cfg.StopWhen = DeveloperOracle(b)
		cfg.Workers = 1
		report, disc, err := core.FirstFailure(cfg)
		if err != nil {
			return res, fmt.Errorf("%s: discovery: %w", b.Name, err)
		}
		r, err := core.RunFromReport(cfg, report, disc)
		if err != nil {
			return res, fmt.Errorf("%s: baseline: %w", b.Name, err)
		}
		baseline, err := r.Sketch.MarshalIndentJSON()
		if err != nil {
			return res, fmt.Errorf("%s: baseline sketch: %w", b.Name, err)
		}
		tenants = append(tenants, shardTenant{
			bug: b, cfg: cfg, report: report, disc: disc,
			iters: len(r.Iters), baseline: baseline,
		})
	}

	const tenant = "bench"
	for _, p := range procs {
		coord, fleet, err := newShardFleet(store.NewMemBackend(), "fleet", tenant, p, 5*time.Second, tenants)
		if err != nil {
			return res, fmt.Errorf("procs=%d: %w", p, err)
		}
		wall, err := fleet.run(coord, tenants)
		if err != nil {
			return res, fmt.Errorf("procs=%d: %w", p, err)
		}
		if err := verifyFleet(coord, tenant, tenants); err != nil {
			return res, fmt.Errorf("procs=%d: %w", p, err)
		}
		var perWorker []int
		total := 0
		for _, w := range fleet.workers {
			runs := w.Stats().Runs
			perWorker = append(perWorker, runs)
			total += runs
		}
		shares := make([]float64, len(perWorker))
		for i, r := range perWorker {
			shares[i] = float64(r)
		}
		res.Rows = append(res.Rows, ShardRow{
			Procs:         p,
			WallMS:        float64(wall.Microseconds()) / 1e3,
			TotalRuns:     total,
			RunsPerSec:    float64(total) / wall.Seconds(),
			Fairness:      JainIndex(shares),
			PerWorkerRuns: perWorker,
			Identical:     true,
		})
	}

	chaos, err := shardChaos(tenant, tenants)
	if err != nil {
		return res, err
	}
	res.Chaos = chaos
	return res, nil
}

// shardChaos is the kill-a-worker pass: the victim is the worker whose
// shard owns the longest-running campaign (so death is guaranteed to
// strand unfinished work), halted after one round with leases intact.
func shardChaos(tenant string, tenants []shardTenant) (*ShardChaos, error) {
	const procs = 3
	// Short lease so the survivors conclude the victim is dead quickly.
	coord, fleet, err := newShardFleet(store.NewMemBackend(), "fleet", tenant, procs, time.Second, tenants)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	victim, iters := 0, -1
	victimCampaigns := make([]int, procs)
	for _, tn := range tenants {
		s := shard.Place(tenant, tn.bug.Name, "", procs)
		victimCampaigns[s]++
		if tn.iters > iters {
			victim, iters = s, tn.iters
		}
	}
	fleet.victim = victim
	wall, err := fleet.run(coord, tenants)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	if err := verifyFleet(coord, tenant, tenants); err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	chaos := &ShardChaos{
		Procs:           procs,
		Victim:          fleet.workers[victim].ID(),
		VictimCampaigns: victimCampaigns[victim],
		Identical:       true,
		WallMS:          float64(wall.Microseconds()) / 1e3,
	}
	for i, w := range fleet.workers {
		if i == victim {
			continue
		}
		st := w.Stats()
		chaos.Takeovers += st.Takeovers
		chaos.Resumed += st.Resumed
	}
	if chaos.Takeovers == 0 {
		return nil, fmt.Errorf("chaos: no survivor took over the dead worker's campaigns")
	}
	return chaos, nil
}

// WriteJSON serializes the result (indented, trailing newline) to path.
func (r *ShardResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// RenderShard renders the shard experiment for the terminal.
func RenderShard(r *ShardResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Sharded campaign fleet: %d campaigns over worker processes (GOMAXPROCS=%d)\n",
		len(r.Bugs), r.GoMaxProcs)
	fmt.Fprintf(&sb, "campaigns: %s\n\n", strings.Join(r.Bugs, ", "))
	fmt.Fprintf(&sb, "%-7s %12s %10s %11s %9s  %s\n",
		"procs", "wall ms", "runs", "runs/sec", "fairness", "per-worker runs")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-7d %12.1f %10d %11.1f %9.3f  %v\n",
			row.Procs, row.WallMS, row.TotalRuns, row.RunsPerSec, row.Fairness, row.PerWorkerRuns)
	}
	if c := r.Chaos; c != nil {
		fmt.Fprintf(&sb, "\nchaos: killed %s (owner of %d campaign(s)) mid-campaign over %d procs: %d takeover(s), %d resumed from checkpoint, %.1f ms\n",
			c.Victim, c.VictimCampaigns, c.Procs, c.Takeovers, c.Resumed, c.WallMS)
	}
	sb.WriteString("\nEvery fleet sketch verified byte-identical to the single-process baseline.\n")
	return sb.String()
}

// ValidateShardJSON checks a shard BENCH artifact's schema: process
// rows aligned with the procs list, runs executed, fairness within
// (0,1], byte-identity recorded on every pass, and a chaos pass with at
// least one takeover.
func ValidateShardJSON(data []byte) error {
	var r ShardResult
	if err := json.Unmarshal(data, &r); err != nil {
		return fmt.Errorf("bench json: %w", err)
	}
	if r.Experiment != "shard" {
		return fmt.Errorf("bench json: experiment %q, want shard", r.Experiment)
	}
	if len(r.Procs) == 0 {
		return fmt.Errorf("bench json: no process-count passes")
	}
	if len(r.Bugs) == 0 {
		return fmt.Errorf("bench json: no campaigns")
	}
	if len(r.Rows) != len(r.Procs) {
		return fmt.Errorf("bench json: %d rows for %d process counts", len(r.Rows), len(r.Procs))
	}
	for i, row := range r.Rows {
		if row.Procs != r.Procs[i] {
			return fmt.Errorf("bench json: row %d procs %d, procs list says %d", i, row.Procs, r.Procs[i])
		}
		if row.TotalRuns <= 0 {
			return fmt.Errorf("bench json: pass %d executed no runs", i)
		}
		if row.Fairness <= 0 || row.Fairness > 1 {
			return fmt.Errorf("bench json: pass %d fairness %g outside (0,1]", i, row.Fairness)
		}
		if row.WallMS < 0 || row.RunsPerSec < 0 {
			return fmt.Errorf("bench json: pass %d has negative timings", i)
		}
		if len(row.PerWorkerRuns) != row.Procs {
			return fmt.Errorf("bench json: pass %d has %d per-worker entries for %d procs", i, len(row.PerWorkerRuns), row.Procs)
		}
		if !row.Identical {
			return fmt.Errorf("bench json: pass %d did not verify byte-identity", i)
		}
	}
	if r.Chaos == nil {
		return fmt.Errorf("bench json: no chaos pass")
	}
	if !r.Chaos.Identical {
		return fmt.Errorf("bench json: chaos pass did not verify byte-identity")
	}
	if r.Chaos.Takeovers <= 0 {
		return fmt.Errorf("bench json: chaos pass recorded no takeovers")
	}
	return nil
}
