package experiments

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
)

// TestWorkersDeterminism is the repo's end-to-end determinism contract:
// a diagnosis at 8 fleet workers must be byte-identical to the serial
// one — sketches, predictor rankings, slice contents, per-iteration
// stats, and FleetHealth — on every printed-sketch bug, both with a
// reliable fleet and under 10% composite fault injection. CI runs this
// under -race at GOMAXPROCS=1 and at the default.
func TestWorkersDeterminism(t *testing.T) {
	for _, name := range []string{"pbzip2", "curl", "apache-3"} {
		for _, rate := range []float64{0, 0.10} {
			t.Run(fmt.Sprintf("%s/rate=%.2f", name, rate), func(t *testing.T) {
				serial := diagnosisFingerprint(t, name, rate, 1)
				wide := diagnosisFingerprint(t, name, rate, 8)
				if wide != serial {
					t.Fatalf("workers=8 diverged from serial:\n--- serial ---\n%s\n--- workers=8 ---\n%s", serial, wide)
				}
			})
		}
	}
}

func diagnosisFingerprint(t *testing.T, name string, rate float64, workers int) string {
	t.Helper()
	b := Suite(name)[0]
	cfg := b.GistConfig()
	cfg.Features = core.AllFeatures()
	cfg.Workers = workers
	cfg.StopWhen = DeveloperOracle(b)
	if rate > 0 {
		cfg.Faults = faults.Composite(ChaosSeed, rate)
	}
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatalf("%s rate=%.2f workers=%d: %v", name, rate, workers, err)
	}
	fp := fmt.Sprintf("disc=%d total=%d rec=%d ov=%.6f\nhealth=%s\n",
		res.DiscoveryRuns, res.TotalRuns, res.FailureRecurrences,
		res.AvgOverheadPct, res.Health)
	for _, it := range res.Iters {
		fp += fmt.Sprintf("%+v\n", it)
	}
	fp += fmt.Sprintf("slice=%v\n", res.Slice.IDs)
	fp += res.Sketch.Render()
	for _, r := range res.Sketch.AllRanked {
		fp += fmt.Sprintf("%+v\n", r)
	}
	return fp
}
