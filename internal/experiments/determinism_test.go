package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/telemetry"
)

// TestWorkersDeterminism is the repo's end-to-end determinism contract:
// a diagnosis at 8 fleet workers must be byte-identical to the serial
// one — sketches, predictor rankings, slice contents, per-iteration
// stats, and FleetHealth — on every printed-sketch bug, both with a
// reliable fleet and under 10% composite fault injection. CI runs this
// under -race at GOMAXPROCS=1 and at the default.
func TestWorkersDeterminism(t *testing.T) {
	for _, name := range []string{"pbzip2", "curl", "apache-3"} {
		for _, rate := range []float64{0, 0.10} {
			t.Run(fmt.Sprintf("%s/rate=%.2f", name, rate), func(t *testing.T) {
				serial := diagnosisFingerprint(t, name, rate, 1)
				wide := diagnosisFingerprint(t, name, rate, 8)
				if wide != serial {
					t.Fatalf("workers=8 diverged from serial:\n--- serial ---\n%s\n--- workers=8 ---\n%s", serial, wide)
				}
			})
		}
	}
}

// TestTelemetryDeterminism pins the observability contract: attaching a
// tracer (with a live JSONL writer) must not perturb the diagnosis.
// Fingerprints with telemetry on must be byte-identical to telemetry
// off at every fleet width and fault rate, and the admission-ordered
// fault/fleet counters must themselves be width-stable.
func TestTelemetryDeterminism(t *testing.T) {
	for _, name := range []string{"pbzip2", "apache-3"} {
		for _, rate := range []float64{0, 0.10} {
			t.Run(fmt.Sprintf("%s/rate=%.2f", name, rate), func(t *testing.T) {
				bare := diagnosisFingerprint(t, name, rate, 1)
				var counters [2]map[string]int64
				for i, workers := range []int{1, 8} {
					tel := telemetry.NewWithWriter(&bytes.Buffer{})
					traced := tracedFingerprint(t, name, rate, workers, tel)
					if traced != bare {
						t.Fatalf("telemetry at workers=%d perturbed the diagnosis:\n--- off ---\n%s\n--- on ---\n%s",
							workers, bare, traced)
					}
					snap := tel.Snapshot()
					counters[i] = stripEngineCounters(snap.Counters)
					if rate > 0 && snap.Counters["faults.injected_runs"] == 0 {
						t.Fatalf("workers=%d rate=%.2f: no faults.injected_runs counted", workers, rate)
					}
					for _, phase := range []string{telemetry.PhaseSlice, telemetry.PhaseDecode, telemetry.PhaseRank, telemetry.PhaseSketch} {
						if snap.Phases[phase].Count == 0 {
							t.Errorf("workers=%d: phase %q recorded no spans", workers, phase)
						}
					}
				}
				if fmt.Sprint(counters[0]) != fmt.Sprint(counters[1]) {
					t.Fatalf("counters diverge across widths:\n--- workers=1 ---\n%v\n--- workers=8 ---\n%v",
						counters[0], counters[1])
				}
			})
		}
	}
}

// stripEngineCounters drops the vm.* execution-engine counters before a
// cross-width comparison: compile-cache hits depend on process-global
// cache warmth and machine-pool hits on physical execution counts
// (speculative chunks over-dispatch at wide fleets), so both are
// explicitly observability-only and not width-stable. Everything the
// admission path counts must still match exactly.
func stripEngineCounters(counters map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(counters))
	for name, v := range counters {
		if strings.HasPrefix(name, "vm.") {
			continue
		}
		out[name] = v
	}
	return out
}

func diagnosisFingerprint(t *testing.T, name string, rate float64, workers int) string {
	return engineFingerprint(t, name, rate, workers, core.EngineBytecode, nil)
}

func tracedFingerprint(t *testing.T, name string, rate float64, workers int, tel *telemetry.Tracer) string {
	return engineFingerprint(t, name, rate, workers, core.EngineBytecode, tel)
}

func engineFingerprint(t *testing.T, name string, rate float64, workers int, eng core.Engine, tel *telemetry.Tracer) string {
	t.Helper()
	b := Suite(name)[0]
	cfg := b.GistConfig()
	cfg.Features = core.AllFeatures()
	cfg.Workers = workers
	cfg.Engine = eng
	cfg.Telemetry = tel
	cfg.StopWhen = DeveloperOracle(b)
	if rate > 0 {
		cfg.Faults = faults.Composite(ChaosSeed, rate)
	}
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatalf("%s rate=%.2f workers=%d: %v", name, rate, workers, err)
	}
	fp := fmt.Sprintf("disc=%d total=%d rec=%d ov=%.6f\nhealth=%s\n",
		res.DiscoveryRuns, res.TotalRuns, res.FailureRecurrences,
		res.AvgOverheadPct, res.Health)
	for _, it := range res.Iters {
		fp += fmt.Sprintf("%+v\n", it)
	}
	fp += fmt.Sprintf("slice=%v\n", res.Slice.IDs)
	fp += res.Sketch.Render()
	for _, r := range res.Sketch.AllRanked {
		fp += fmt.Sprintf("%+v\n", r)
	}
	return fp
}
