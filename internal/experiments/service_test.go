package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// TestServiceLoadExperiment runs a reduced fleet — two tenants, forty
// agents, transport faults on — and checks every diagnosis came back
// byte-identical and the BENCH artifact validates.
func TestServiceLoadExperiment(t *testing.T) {
	res, err := ServiceLoad("deadlock", 2, 20, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reports != 2 || !res.Identical {
		t.Fatalf("result: %+v", res)
	}
	if res.Agents != 40 {
		t.Errorf("agents = %d, want 40", res.Agents)
	}
	if res.LostTasks != 0 {
		t.Errorf("%d tasks lost under transport faults; retries and leases must cover them", res.LostTasks)
	}
	if res.ReportsPerSec <= 0 || res.RequestsPerSec <= 0 {
		t.Errorf("throughput not recorded: %+v", res)
	}
	if len(res.RPCs) == 0 {
		t.Error("no RPC latency rows")
	}

	path := filepath.Join(t.TempDir(), "BENCH_service.json")
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBenchJSON(data); err != nil {
		t.Errorf("artifact failed validation: %v", err)
	}
	if err := ValidateServiceJSON([]byte(`{"experiment":"service"}`)); err == nil {
		t.Error("empty service artifact validated")
	}
	if err := ValidateServiceJSON([]byte(`{"experiment":"perf"}`)); err == nil {
		t.Error("wrong-experiment artifact validated")
	}
}
