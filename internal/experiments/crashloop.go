package experiments

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bugs"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/store"
)

// The crashloop experiment is the durability evaluation: a diagnosis is
// repeatedly killed at random iteration boundaries and resumed from the
// durable checkpoint store, while the store itself suffers injected
// disk faults (torn writes, bit flips, dropped renames, fsync errors)
// and the pipeline runs under composite fleet faults. The experiment
// asserts — and the BENCH artifact records — that every resumed
// diagnosis is byte-identical to the uninterrupted run: kills and disk
// corruption cost generations and recovery work, never answers.

// CrashloopPipelineRates and CrashloopDiskRates are the default sweep
// axes: a clean pipeline and the chaos table's 10% composite rate,
// crossed with a clean disk and a heavily faulty one.
var (
	CrashloopPipelineRates = []float64{0, 0.10}
	CrashloopDiskRates     = []float64{0, 0.25}
)

// CrashloopRow is one (bug, pipeline rate, disk rate) cell.
type CrashloopRow struct {
	Bug          string  `json:"bug"`
	PipelineRate float64 `json:"pipeline_rate"`
	DiskRate     float64 `json:"disk_rate"`

	// Kills is how many times the in-memory diagnosis was destroyed at
	// an iteration boundary; Resumes counts the restores from the store
	// (equal to Kills when recovery always succeeded).
	Kills   int `json:"kills"`
	Resumes int `json:"resumes"`
	// Saves/SaveErrors split checkpoint writes by outcome; a failed
	// save (injected fsync error) leaves the previous generation
	// standing.
	Saves      int `json:"saves"`
	SaveErrors int `json:"save_errors"`
	// Quarantined counts generations the recovery scans moved aside as
	// torn or corrupt; Fallbacks counts resumes that had to discard the
	// newest generation and fall back to an older one; ColdStarts counts
	// resumes where no valid generation survived at all and the
	// diagnosis restarted from scratch (still byte-identical — a
	// campaign is a pure function of its config and seed cursor).
	Quarantined int `json:"quarantined"`
	Fallbacks   int `json:"fallbacks"`
	ColdStarts  int `json:"cold_starts"`
	// Generations is how many valid checkpoints survived on disk at the
	// end; TotalRuns is the finished diagnosis's production-run count.
	Generations int `json:"generations"`
	TotalRuns   int `json:"total_runs"`
	// Identical records the byte-identity assertion against the
	// uninterrupted baseline. Crashloop fails loudly when false, so a
	// written artifact always says true — the field documents the
	// check.
	Identical bool `json:"identical"`
}

// CrashloopResult is the full crashloop experiment, serialized by
// -json to BENCH_crashloop.json.
type CrashloopResult struct {
	Experiment    string         `json:"experiment"`
	Seed          int64          `json:"seed"`
	Bugs          []string       `json:"bugs"`
	PipelineRates []float64      `json:"pipeline_rates"`
	DiskRates     []float64      `json:"disk_rates"`
	Rows          []CrashloopRow `json:"rows"`
}

// crashloopRNG derives the deterministic kill schedule for one cell.
func crashloopRNG(bug string, pipeRate, diskRate float64) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "crashloop|%d|%s|%g|%g", int64(ChaosSeed), bug, pipeRate, diskRate)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// Crashloop runs the kill-and-resume sweep. Unlike the chaos sweep, a
// divergent resumed diagnosis is an error, not a data point: byte
// identity under kills is the property the checkpoint store exists to
// provide.
func Crashloop(suite []*bugs.Bug, pipeRates, diskRates []float64) (*CrashloopResult, error) {
	if suite == nil {
		suite = ChaosSuite()
	}
	if len(pipeRates) == 0 {
		pipeRates = CrashloopPipelineRates
	}
	if len(diskRates) == 0 {
		diskRates = CrashloopDiskRates
	}
	res := &CrashloopResult{
		Experiment:    "crashloop",
		Seed:          ChaosSeed,
		PipelineRates: pipeRates,
		DiskRates:     diskRates,
	}
	for _, b := range suite {
		res.Bugs = append(res.Bugs, b.Name)
	}
	scratch, err := os.MkdirTemp("", "gist-crashloop-")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(scratch)

	cell := 0
	for _, b := range suite {
		for _, pr := range pipeRates {
			for _, dr := range diskRates {
				dir := filepath.Join(scratch, fmt.Sprintf("cell%03d", cell))
				cell++
				row, err := crashloopCell(b, pr, dr, dir)
				if err != nil {
					return res, fmt.Errorf("crashloop %s pipe=%.2f disk=%.2f: %w", b.Name, pr, dr, err)
				}
				res.Rows = append(res.Rows, row)
			}
		}
	}
	return res, nil
}

// crashloopCell runs one bug to completion through repeated kills.
func crashloopCell(b *bugs.Bug, pipeRate, diskRate float64, dir string) (CrashloopRow, error) {
	row := CrashloopRow{Bug: b.Name, PipelineRate: pipeRate, DiskRate: diskRate}
	cfg := b.GistConfig()
	cfg.Features = core.AllFeatures()
	cfg.Workers = Workers
	cfg.Label = b.Name
	cfg.StopWhen = DeveloperOracle(b)
	if pipeRate > 0 {
		cfg.Faults = faults.Composite(ChaosSeed, pipeRate)
	}
	report, disc, err := core.FirstFailure(cfg)
	if err != nil {
		return row, fmt.Errorf("discovery: %w", err)
	}
	baseline := schedFingerprint(core.RunFromReport(cfg, report, disc))

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return row, err
	}
	var dinj *faults.Injector
	if diskRate > 0 {
		dinj = faults.NewInjector(faults.Disk(ChaosSeed, diskRate))
	}
	st, err := store.Open(dir, b.Name, store.Options{Faults: dinj})
	if err != nil {
		return row, err
	}
	camp, err := core.NewCampaign(cfg, report, disc)
	if err != nil {
		return row, err
	}
	save := func(c *core.Campaign) error {
		snap, err := c.Snapshot()
		if err != nil {
			return err
		}
		payload, err := snap.Encode()
		if err != nil {
			return err
		}
		if _, err := st.Save(payload); err != nil {
			row.SaveErrors++ // previous durable generation stands
			return nil
		}
		row.Saves++
		return nil
	}
	if err := save(camp); err != nil {
		return row, err
	}

	rng := crashloopRNG(b.Name, pipeRate, diskRate)
	var final *core.Result
	var finalErr error
	for done := false; !done; {
		// First cycle always kills after one boundary, so every cell with
		// a multi-iteration diagnosis exercises at least one resume; later
		// cycles kill after 1–3 boundaries.
		steps := 1
		if row.Kills > 0 {
			steps = 1 + rng.Intn(3)
		}
		for i := 0; i < steps && !done; i++ {
			done, _ = camp.Step()
			if done {
				final, finalErr = camp.Result()
				break
			}
			if err := save(camp); err != nil {
				return row, err
			}
		}
		if done {
			break
		}
		// Kill: the in-memory campaign is gone; a fresh process reopens
		// the store (quarantining anything the crash or disk faults left
		// torn) and restores the newest generation that decodes, falling
		// back when the newest does not.
		row.Kills++
		camp = nil
		st, err = store.Open(dir, b.Name, store.Options{Faults: dinj})
		if err != nil {
			return row, err
		}
		row.Quarantined += len(st.Quarantined())
		var snap *core.CampaignSnapshot
		for {
			latest := st.Latest()
			if latest == nil {
				break // every generation lost: cold-restart below
			}
			snap, err = core.DecodeCampaignSnapshot(latest.Payload)
			if err == nil {
				break
			}
			snap = nil
			st.Discard(err)
			row.Fallbacks++
		}
		if snap == nil {
			// Disk faults destroyed every durable generation. A fresh
			// campaign restarts the diagnosis from the same report and
			// seed cursor, so the answer is still byte-identical.
			row.ColdStarts++
			camp, err = core.NewCampaign(cfg, report, disc)
		} else {
			camp, err = core.RestoreCampaign(cfg, snap)
		}
		if err != nil {
			return row, fmt.Errorf("kill %d: restore: %w", row.Kills, err)
		}
		row.Resumes++
		if camp.Finished() {
			final, finalErr = camp.Result()
			done = true
		}
	}

	row.Generations = len(st.Generations())
	if final != nil {
		row.TotalRuns = final.TotalRuns
	}
	got := schedFingerprint(final, finalErr)
	row.Identical = got == baseline
	if !row.Identical {
		return row, fmt.Errorf("resumed diagnosis diverged from uninterrupted run after %d kills:\n--- resumed ---\n%s\n--- baseline ---\n%s",
			row.Kills, got, baseline)
	}
	return row, nil
}

// WriteJSON serializes the result (indented, trailing newline) to path.
func (r *CrashloopResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// RenderCrashloop renders the crashloop experiment for the terminal.
func RenderCrashloop(r *CrashloopResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Crash-loop durability: kill-and-resume at iteration boundaries (seed %d)\n", r.Seed)
	fmt.Fprintf(&sb, "campaigns: %s\n\n", strings.Join(r.Bugs, ", "))
	fmt.Fprintf(&sb, "%-10s %6s %6s %6s %8s %6s %7s %6s %6s %5s %5s %9s\n",
		"bug", "pipe", "disk", "kills", "resumes", "saves", "saverr", "quar", "fback", "cold", "gens", "identical")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-10s %5.0f%% %5.0f%% %6d %8d %6d %7d %6d %6d %5d %5d %9v\n",
			row.Bug, row.PipelineRate*100, row.DiskRate*100, row.Kills, row.Resumes,
			row.Saves, row.SaveErrors, row.Quarantined, row.Fallbacks, row.ColdStarts,
			row.Generations, row.Identical)
	}
	sb.WriteString("\nEvery resumed diagnosis verified byte-identical to its uninterrupted run.\n")
	return sb.String()
}

// ValidateCrashloopJSON checks a crashloop BENCH artifact's schema: the
// sweep grid is complete, every cell checkpointed durably and verified
// byte-identical, and clean-disk cells saw no disk damage.
func ValidateCrashloopJSON(data []byte) error {
	var r CrashloopResult
	if err := json.Unmarshal(data, &r); err != nil {
		return fmt.Errorf("bench json: %w", err)
	}
	if r.Experiment != "crashloop" {
		return fmt.Errorf("bench json: experiment %q, want crashloop", r.Experiment)
	}
	if len(r.Bugs) == 0 || len(r.PipelineRates) == 0 || len(r.DiskRates) == 0 {
		return fmt.Errorf("bench json: empty sweep axes")
	}
	want := len(r.Bugs) * len(r.PipelineRates) * len(r.DiskRates)
	if len(r.Rows) != want {
		return fmt.Errorf("bench json: %d rows for a %dx%dx%d sweep (want %d)",
			len(r.Rows), len(r.Bugs), len(r.PipelineRates), len(r.DiskRates), want)
	}
	for i, row := range r.Rows {
		if !row.Identical {
			return fmt.Errorf("bench json: row %d (%s) not byte-identical to the uninterrupted run", i, row.Bug)
		}
		if row.Saves <= 0 {
			return fmt.Errorf("bench json: row %d (%s) durably saved no checkpoints", i, row.Bug)
		}
		if row.DiskRate == 0 && row.Generations <= 0 {
			return fmt.Errorf("bench json: row %d (%s) left no valid generations on a clean disk", i, row.Bug)
		}
		if row.Resumes > row.Kills {
			return fmt.Errorf("bench json: row %d (%s) resumed %d times for %d kills", i, row.Bug, row.Resumes, row.Kills)
		}
		if row.DiskRate == 0 && (row.Quarantined > 0 || row.SaveErrors > 0 || row.Fallbacks > 0 || row.ColdStarts > 0) {
			return fmt.Errorf("bench json: row %d (%s) reports disk damage at disk rate 0", i, row.Bug)
		}
		if row.TotalRuns < 0 {
			return fmt.Errorf("bench json: row %d (%s) negative total runs", i, row.Bug)
		}
	}
	return nil
}
