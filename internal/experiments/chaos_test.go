package experiments

import (
	"testing"

	"repro/internal/bugs"
	"repro/internal/core"
)

// TestChaosRegressionPrintedSketches is the headline robustness
// guarantee: at a 10% composite fault rate the three sketches the paper
// prints (pbzip2, curl, apache-3) must still satisfy the developer
// oracle — the root cause stays in the sketch with a high-precision
// predictor — despite crashed endpoints, corrupt traces, and damaged
// trap logs.
func TestChaosRegressionPrintedSketches(t *testing.T) {
	for _, name := range []string{"pbzip2", "curl", "apache-3"} {
		b := bugs.ByName(name)
		res, err := DiagnoseFaulty(b, 0.10, ChaosSeed)
		if err != nil {
			t.Errorf("%s: diagnosis failed at 10%% faults: %v", name, err)
			continue
		}
		if res.Sketch == nil {
			t.Errorf("%s: no sketch at 10%% faults", name)
			continue
		}
		if !DeveloperOracle(b)(res.Sketch) {
			t.Errorf("%s: sketch no longer contains the root cause at 10%% faults", name)
		}
		_, _, overall := res.Sketch.Accuracy(b.Ideal())
		if overall < 60 {
			t.Errorf("%s: accuracy collapsed to %.1f%% at 10%% faults", name, overall)
		}
	}
}

// TestChaosSweepIsDeterministic: the chaos table is a regression
// artifact, so identical invocations must produce identical rows.
func TestChaosSweepIsDeterministic(t *testing.T) {
	suite := Suite("pbzip2")
	rates := []float64{0.10}
	a := Chaos(suite, rates)
	b := Chaos(suite, rates)
	if RenderChaos(a) != RenderChaos(b) {
		t.Fatalf("chaos sweep not deterministic:\n%s\nvs\n%s", RenderChaos(a), RenderChaos(b))
	}
}

// TestChaosRateZeroMatchesCleanDiagnosis: the 0% row of the sweep must
// be the byte-identical clean pipeline — same accuracy, same run
// counts, clean health.
func TestChaosRateZeroMatchesCleanDiagnosis(t *testing.T) {
	b := bugs.ByName("pbzip2")
	faulty, err := DiagnoseFaulty(b, 0, ChaosSeed)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Diagnose(b, core.AllFeatures(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Sketch.Render() != clean.Sketch.Render() {
		t.Error("0%% fault rate changed the sketch")
	}
	if faulty.TotalRuns != clean.TotalRuns || faulty.FailureRecurrences != clean.FailureRecurrences {
		t.Errorf("0%% fault rate changed run counts: %d/%d vs %d/%d",
			faulty.TotalRuns, faulty.FailureRecurrences, clean.TotalRuns, clean.FailureRecurrences)
	}
	if faulty.Health.Degraded() {
		t.Errorf("0%% fault rate degraded the fleet: %s", faulty.Health)
	}
}
