package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// TestPerfBenchJSONRoundTrip runs a one-bug, one-width perf pass and
// validates the JSON it writes against the observability schema — the
// same check CI's smoke step applies to its artifact.
func TestPerfBenchJSONRoundTrip(t *testing.T) {
	res, err := Perf(Suite("pbzip2"), []int{1})
	if err != nil {
		t.Fatalf("Perf: %v", err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_fleet.json")
	if err := res.WriteJSON(path); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBenchJSON(data); err != nil {
		t.Fatalf("ValidateBenchJSON: %v", err)
	}

	// The pass really did the work: the phase rows the schema requires
	// must carry live measurements, not just materialized zeros.
	if len(res.Phases) != 1 || len(res.Counters) != 1 {
		t.Fatalf("want 1 pass, got %d phase rows / %d counter rows", len(res.Phases), len(res.Counters))
	}
	byName := map[string]PhaseRow{}
	for _, row := range res.Phases[0] {
		byName[row.Phase] = row
	}
	for _, name := range RequiredPhases {
		if byName[name].Count == 0 {
			t.Errorf("required phase %q recorded no spans", name)
		}
	}
	c := res.Counters[0]
	for _, name := range []string{"cache.graph_builds", "cache.slice_builds", "pt.decode_calls", "watch.arms", "fleet.dispatched"} {
		if c[name] <= 0 {
			t.Errorf("counter %q = %d, want > 0", name, c[name])
		}
	}
	if c["faults.injected_runs"] != 0 {
		t.Errorf("reliable fleet counted %d injected runs", c["faults.injected_runs"])
	}
}

// TestValidateBenchJSONRejects covers the malformed-artifact paths.
func TestValidateBenchJSONRejects(t *testing.T) {
	cases := map[string]string{
		"not json":         `{`,
		"wrong experiment": `{"experiment":"chaos","workers":[1],"phase_breakdown":[[]],"counters":[{}]}`,
		"no passes":        `{"experiment":"perf","workers":[],"phase_breakdown":[],"counters":[]}`,
		"misaligned":       `{"experiment":"perf","workers":[1,2],"phase_breakdown":[[]],"counters":[{}]}`,
		"missing phase":    `{"experiment":"perf","workers":[1],"phase_breakdown":[[{"phase":"slice","count":1,"total_ms":1,"max_ms":1}]],"counters":[{"cache.graph_builds":1,"cache.slice_builds":1,"faults.injected_runs":0,"fleet.dispatched":1}]}`,
		"negative field":   `{"experiment":"perf","workers":[1],"phase_breakdown":[[{"phase":"slice","count":-1,"total_ms":1,"max_ms":1}]],"counters":[{}]}`,
	}
	for name, data := range cases {
		if err := ValidateBenchJSON([]byte(data)); err == nil {
			t.Errorf("%s: validated, want error", name)
		}
	}
}
