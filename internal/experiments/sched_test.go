package experiments

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestJainIndex(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty is vacuously fair", nil, 1},
		{"all zero is vacuously fair", []float64{0, 0, 0}, 1},
		{"equal shares", []float64{5, 5, 5, 5}, 1},
		{"one tenant monopolizes", []float64{10, 0, 0, 0}, 0.25},
		{"moderate skew", []float64{4, 2}, 0.9},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := JainIndex(c.xs); math.Abs(got-c.want) > 1e-9 {
				t.Errorf("JainIndex(%v) = %g, want %g", c.xs, got, c.want)
			}
		})
	}
}

// TestSchedBenchJSONRoundTrip runs a three-bug, two-width sched pass —
// which internally verifies every scheduled diagnosis against its
// serial baseline — and validates the artifact it writes, the same
// check CI's sched smoke step applies.
func TestSchedBenchJSONRoundTrip(t *testing.T) {
	res, err := Sched(Suite("pbzip2", "curl", "memcached"), []int{1, 2})
	if err != nil {
		t.Fatalf("Sched: %v", err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_sched.json")
	if err := res.WriteJSON(path); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBenchJSON(data); err != nil {
		t.Fatalf("ValidateBenchJSON: %v", err)
	}

	if len(res.Rows) != 2 || len(res.Campaigns) != 2 {
		t.Fatalf("want 2 passes, got %d rows / %d campaign maps", len(res.Rows), len(res.Campaigns))
	}
	for i, row := range res.Rows {
		if row.Fairness <= 0.5 {
			t.Errorf("pass %d: round-robin fairness %g suspiciously low", i, row.Fairness)
		}
		if row.Rounds == 0 || row.TotalRuns == 0 {
			t.Errorf("pass %d did no work: %+v", i, row)
		}
	}
	// The campaign labels must separate the tenants' telemetry.
	for i, camps := range res.Campaigns {
		for _, bug := range []string{"pbzip2", "curl", "memcached"} {
			cs, ok := camps[bug]
			if !ok {
				t.Fatalf("pass %d: no campaign telemetry for %s", i, bug)
			}
			if cs.Counters["fleet.dispatched"] <= 0 {
				t.Errorf("pass %d: campaign %s dispatched nothing", i, bug)
			}
		}
	}
}

// TestValidateSchedJSONRejects covers the malformed sched-artifact
// paths, including dispatch through ValidateBenchJSON.
func TestValidateSchedJSONRejects(t *testing.T) {
	cases := map[string]string{
		"not json":         `{`,
		"unknown exp":      `{"experiment":"mystery"}`,
		"no widths":        `{"experiment":"sched","bugs":["a"],"widths":[],"rows":[],"campaigns":[],"counters":[]}`,
		"no bugs":          `{"experiment":"sched","bugs":[],"widths":[1],"rows":[{"width":1}],"campaigns":[{}],"counters":[{}]}`,
		"misaligned":       `{"experiment":"sched","bugs":["a"],"widths":[1,2],"rows":[{"width":1}],"campaigns":[{}],"counters":[{}]}`,
		"width mismatch":   `{"experiment":"sched","bugs":["a"],"widths":[1],"rows":[{"width":3,"total_runs":1,"fairness":1}],"campaigns":[{"a":{"phases":{},"counters":{"fleet.dispatched":1}}}],"counters":[{"fleet.dispatched":1}]}`,
		"no runs":          `{"experiment":"sched","bugs":["a"],"widths":[1],"rows":[{"width":1,"total_runs":0,"fairness":1}],"campaigns":[{"a":{"phases":{},"counters":{"fleet.dispatched":1}}}],"counters":[{"fleet.dispatched":1}]}`,
		"bad fairness":     `{"experiment":"sched","bugs":["a"],"widths":[1],"rows":[{"width":1,"total_runs":5,"fairness":1.5}],"campaigns":[{"a":{"phases":{},"counters":{"fleet.dispatched":1}}}],"counters":[{"fleet.dispatched":1}]}`,
		"missing campaign": `{"experiment":"sched","bugs":["a"],"widths":[1],"rows":[{"width":1,"total_runs":5,"fairness":1}],"campaigns":[{}],"counters":[{"fleet.dispatched":1}]}`,
	}
	for name, data := range cases {
		if err := ValidateBenchJSON([]byte(data)); err == nil {
			t.Errorf("%s: validated, want error", name)
		}
	}
}
