package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/bugs"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/service"
	"repro/internal/service/agent"
)

// ServiceResult is the gist-as-a-service load experiment, serialized by
// -json to BENCH_service.json: a loopback diagnosis server driven by a
// large simulated agent fleet, with per-path RPC latency percentiles
// and end-to-end diagnosis throughput.
type ServiceResult struct {
	Experiment string  `json:"experiment"` // "service"
	Bug        string  `json:"bug"`
	Tenants    int     `json:"tenants"`
	Agents     int     `json:"agents"`
	FaultRate  float64 `json:"transport_fault_rate"`

	// Reports is how many failure reports (one campaign each) the
	// server diagnosed to completion.
	Reports        int     `json:"reports"`
	DurationMS     float64 `json:"duration_ms"`
	ReportsPerSec  float64 `json:"reports_per_sec"`
	RequestsPerSec float64 `json:"requests_per_sec"`

	// Identical records that every served sketch was byte-identical to
	// the in-process baseline; the experiment fails loudly when one is
	// not, so a written artifact always says true.
	Identical bool `json:"identical"`

	Requests         int64 `json:"requests"`
	Uploads          int64 `json:"uploads"`
	DuplicateUploads int64 `json:"duplicate_uploads"`
	Reassigned       int64 `json:"reassigned"`
	LostTasks        int64 `json:"lost_tasks"`
	BadChecksum      int64 `json:"bad_checksum"`

	// RPCs is the per-path latency distribution (p50/p95/p99).
	RPCs []service.RPCStat `json:"rpcs"`
}

// ServiceLoad runs the load experiment: tenants×agentsPerTenant
// simulated agents against one loopback server, one diagnosis campaign
// per tenant, transport faults injected on every agent's wire client.
// Every sketch the service returns is diffed byte-for-byte against an
// in-process core.Run of the same bug.
func ServiceLoad(bugName string, tenants, agentsPerTenant int, faultRate float64) (*ServiceResult, error) {
	b := bugs.ByName(bugName)
	if b == nil {
		return nil, fmt.Errorf("unknown bug %q", bugName)
	}
	res := &ServiceResult{
		Experiment: "service",
		Bug:        bugName,
		Tenants:    tenants,
		Agents:     tenants * agentsPerTenant,
		FaultRate:  faultRate,
	}

	// In-process baseline, computed once: the wire must not change a byte.
	base, err := core.Run(b.GistConfig())
	if err != nil {
		return nil, fmt.Errorf("in-process baseline: %w", err)
	}
	want, err := base.Sketch.MarshalIndentJSON()
	if err != nil {
		return nil, err
	}

	srv := service.NewServer(service.Options{
		LeaseTTL:        5 * time.Second,
		PollTimeout:     100 * time.Millisecond,
		MaxTaskAttempts: 10,
	})
	defer srv.Close()
	transport := service.LoopbackTransport{Handler: srv.Handler()}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for t := 0; t < tenants; t++ {
		tenant := fmt.Sprintf("tenant-%03d", t)
		for a := 0; a < agentsPerTenant; a++ {
			ag, err := agent.New(agent.Config{
				Server:    "http://gist",
				Tenant:    tenant,
				ID:        fmt.Sprintf("ep-%03d-%03d", t, a),
				Poll:      50 * time.Millisecond,
				Faults:    faults.Transport(int64(t*1000+a+1), faultRate),
				Transport: transport,
				Sleep:     func(time.Duration) {},
			})
			if err != nil {
				return nil, err
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = ag.Run(ctx)
			}()
		}
	}

	start := time.Now()
	// Submit one failure report per tenant, then collect every sketch.
	var submitWG sync.WaitGroup
	errs := make(chan error, tenants)
	for t := 0; t < tenants; t++ {
		tenant := fmt.Sprintf("tenant-%03d", t)
		submitWG.Add(1)
		go func() {
			defer submitWG.Done()
			cli := service.NewClient(service.ClientOptions{
				BaseURL:   "http://gist",
				Tenant:    tenant,
				Actor:     "submitter",
				Faults:    faults.Transport(int64(len(tenant)), faultRate),
				Transport: transport,
				Sleep:     func(time.Duration) {},
			})
			if err := cli.Call(ctx, service.PathSubmit, &service.SubmitRequest{Tenant: tenant, Bug: bugName}, nil); err != nil {
				errs <- fmt.Errorf("%s: submit: %w", tenant, err)
				return
			}
			if !srv.WaitCampaign(tenant, bugName) {
				errs <- fmt.Errorf("%s: campaign vanished", tenant)
				return
			}
			var sk service.SketchResponse
			if err := cli.Call(ctx, service.PathSketch, &service.SketchRequest{Tenant: tenant, Bug: bugName}, &sk); err != nil {
				errs <- fmt.Errorf("%s: sketch: %w", tenant, err)
				return
			}
			if !sk.Ready {
				var st service.StatusResponse
				_ = cli.Call(ctx, service.PathStatus, &service.StatusRequest{Tenant: tenant, Bug: bugName}, &st)
				errs <- fmt.Errorf("%s: campaign finished without a sketch (state=%s err=%q)", tenant, st.State, st.Err)
				return
			}
			if !bytes.Equal(sk.Sketch, want) {
				errs <- fmt.Errorf("%s: served sketch differs from the in-process baseline", tenant)
			}
		}()
	}
	submitWG.Wait()
	elapsed := time.Since(start)
	cancel()
	wg.Wait()
	close(errs)
	for err := range errs {
		return res, err
	}

	counters, rpcs := srv.Snapshot()
	res.Reports = tenants
	res.DurationMS = float64(elapsed.Microseconds()) / 1000
	res.ReportsPerSec = float64(tenants) / elapsed.Seconds()
	res.RequestsPerSec = float64(counters.Requests) / elapsed.Seconds()
	res.Identical = true
	res.Requests = counters.Requests
	res.Uploads = counters.Uploads
	res.DuplicateUploads = counters.DuplicateUploads
	res.Reassigned = counters.Reassigned
	res.LostTasks = counters.LostTasks
	res.BadChecksum = counters.BadChecksum
	res.RPCs = rpcs
	return res, nil
}

// WriteJSON writes the artifact.
func (r *ServiceResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// RenderService renders the load experiment for the terminal.
func RenderService(r *ServiceResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Gist-as-a-service load: %d agents across %d tenants, bug %s, transport faults %.0f%%\n\n",
		r.Agents, r.Tenants, r.Bug, r.FaultRate*100)
	fmt.Fprintf(&sb, "diagnoses completed   %d (%.2f reports/sec)\n", r.Reports, r.ReportsPerSec)
	fmt.Fprintf(&sb, "wire requests         %d (%.0f req/sec)\n", r.Requests, r.RequestsPerSec)
	fmt.Fprintf(&sb, "uploads               %d admitted, %d duplicate deliveries deduped\n", r.Uploads, r.DuplicateUploads)
	fmt.Fprintf(&sb, "reassigned / lost     %d / %d\n", r.Reassigned, r.LostTasks)
	fmt.Fprintf(&sb, "corrupt bodies seen   %d (all rejected on checksum)\n", r.BadChecksum)
	fmt.Fprintf(&sb, "sketches byte-identical to in-process runs: %v\n\n", r.Identical)
	fmt.Fprintf(&sb, "%-22s %9s %9s %9s %9s\n", "path", "count", "p50 ms", "p95 ms", "p99 ms")
	for _, s := range r.RPCs {
		fmt.Fprintf(&sb, "%-22s %9d %9.3f %9.3f %9.3f\n", s.Path, s.Count, s.P50Ms, s.P95Ms, s.P99Ms)
	}
	return sb.String()
}

// ValidateServiceJSON checks the service schema.
func ValidateServiceJSON(data []byte) error {
	var r ServiceResult
	if err := json.Unmarshal(data, &r); err != nil {
		return fmt.Errorf("bench json: %w", err)
	}
	if r.Experiment != "service" {
		return fmt.Errorf("bench json: experiment %q, want service", r.Experiment)
	}
	if r.Bug == "" {
		return fmt.Errorf("bench json: no bug recorded")
	}
	if r.Tenants < 1 || r.Agents < r.Tenants {
		return fmt.Errorf("bench json: implausible fleet: %d tenants, %d agents", r.Tenants, r.Agents)
	}
	if r.Reports < 1 || r.ReportsPerSec <= 0 || r.DurationMS <= 0 {
		return fmt.Errorf("bench json: no completed diagnoses recorded")
	}
	if !r.Identical {
		return fmt.Errorf("bench json: sketches were not byte-identical to in-process runs")
	}
	if r.FaultRate < 0 || r.FaultRate > 1 {
		return fmt.Errorf("bench json: transport fault rate %g outside [0,1]", r.FaultRate)
	}
	if len(r.RPCs) == 0 {
		return fmt.Errorf("bench json: no RPC latency rows")
	}
	if !sort.SliceIsSorted(r.RPCs, func(i, j int) bool { return r.RPCs[i].Path < r.RPCs[j].Path }) {
		return fmt.Errorf("bench json: RPC rows not sorted by path")
	}
	for _, s := range r.RPCs {
		if s.Count < 1 {
			return fmt.Errorf("bench json: path %s has no samples", s.Path)
		}
		if s.P50Ms < 0 || s.P50Ms > s.P95Ms || s.P95Ms > s.P99Ms {
			return fmt.Errorf("bench json: path %s percentiles not monotone: p50=%g p95=%g p99=%g",
				s.Path, s.P50Ms, s.P95Ms, s.P99Ms)
		}
	}
	return nil
}
