package experiments

import (
	"repro/internal/bugs"
	"repro/internal/core"
	"repro/internal/faults"
)

// Chaos sweep: the robustness evaluation the paper's clean-room setup
// never needed. Gist's clients are production endpoints, so the server
// must survive a fleet that crashes, hangs, overflows its PT buffers,
// corrupts traces, and drops traps. The sweep re-runs the diagnosis
// under increasing composite fault rates and reports what happens to
// sketch accuracy and recurrence latency.

// ChaosSeed is the fixed injector seed the sweep (and the regression
// test) uses, so the chaos table is deterministic run to run.
const ChaosSeed = 20151005

// ChaosRates are the default composite fault rates swept (0–30%).
var ChaosRates = []float64{0, 0.05, 0.10, 0.20, 0.30}

// ChaosRow is one (bug, fault-rate) cell of the chaos table.
type ChaosRow struct {
	Bug  string
	Rate float64

	// Accuracy is the overall sketch accuracy vs. the ideal (0 when no
	// sketch was produced).
	Accuracy float64
	// Recurrences / TotalRuns measure diagnosis latency; faults inflate
	// TotalRuns because lost runs must be re-seeded.
	Recurrences int
	TotalRuns   int
	// Health is the diagnosis-wide fleet-health summary.
	Health core.FleetHealth
	// LowConfidence reports the final sketch's quorum annotation.
	LowConfidence bool
	// Err marks a diagnosis that did not converge at this fault rate.
	Err bool
}

// DiagnoseFaulty runs the full pipeline on one bug with a composite
// fault rate spread across every fault class, deterministically from
// seed.
func DiagnoseFaulty(b *bugs.Bug, rate float64, seed int64) (*core.Result, error) {
	cfg := b.GistConfig()
	cfg.Features = core.AllFeatures()
	cfg.Workers = Workers
	cfg.Telemetry = Telemetry
	cfg.StopWhen = DeveloperOracle(b)
	cfg.Faults = faults.Composite(seed, rate)
	return core.Run(cfg)
}

// ChaosSuite is the default chaos subset: the three bugs whose sketches
// the paper prints, so degradation is judged against known-good output.
func ChaosSuite() []*bugs.Bug {
	return Suite("pbzip2", "curl", "apache-3")
}

// Chaos runs the sweep. A failed diagnosis is a data point, not an
// error: the whole purpose is to see where the pipeline degrades.
func Chaos(suite []*bugs.Bug, rates []float64) []ChaosRow {
	if suite == nil {
		suite = ChaosSuite()
	}
	if len(rates) == 0 {
		rates = ChaosRates
	}
	var rows []ChaosRow
	for _, rate := range rates {
		batch, _ := forEachBug(suite, func(b *bugs.Bug) (ChaosRow, error) {
			row := ChaosRow{Bug: b.Name, Rate: rate}
			res, err := DiagnoseFaulty(b, rate, ChaosSeed)
			row.Err = err != nil
			if res != nil {
				row.Recurrences = res.FailureRecurrences
				row.TotalRuns = res.TotalRuns
				row.Health = res.Health
				if res.Sketch != nil {
					_, _, row.Accuracy = res.Sketch.Accuracy(b.Ideal())
					row.LowConfidence = res.Sketch.LowConfidence
				}
			}
			return row, nil
		})
		rows = append(rows, batch...)
	}
	return rows
}
