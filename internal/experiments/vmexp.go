package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/bugs"
	"repro/internal/vm"
	"repro/internal/vm/bytecode"
)

// The vm experiment pins the bytecode engine's single-thread win over
// the tree-walking interpreter: the same bug runs (same seeds, same
// workloads, no hooks) timed on both engines via the testing benchmark
// driver, with allocation counts. This is the per-run cost the fleet
// pays thousands of times per diagnosis, so the speedup here is the
// speedup every layer above — fleet pool, scheduler, service — inherits.

// VMRow is one bug's engine comparison.
type VMRow struct {
	Bug string `json:"bug"`
	// NS per run on each engine (testing.Benchmark ns/op).
	InterpNSOp   int64 `json:"interp_ns_op"`
	BytecodeNSOp int64 `json:"bytecode_ns_op"`
	// Heap allocations per run on each engine.
	InterpAllocsOp   int64 `json:"interp_allocs_op"`
	BytecodeAllocsOp int64 `json:"bytecode_allocs_op"`
	// Runs per second on a single thread, the fleet-facing number.
	InterpRunsPerSec   float64 `json:"interp_runs_per_sec"`
	BytecodeRunsPerSec float64 `json:"bytecode_runs_per_sec"`
	// Speedup is InterpNSOp / BytecodeNSOp.
	Speedup float64 `json:"speedup"`
}

// VMResult is the full vm experiment, serialized to BENCH_vm.json.
type VMResult struct {
	Experiment string `json:"experiment"`
	// GoMaxProcs records the parallelism available at measurement time;
	// the measurement itself is single-thread by construction.
	GoMaxProcs int     `json:"gomaxprocs"`
	Rows       []VMRow `json:"rows"`
}

// VMSuite is the default measurement set: the three printed-sketch bugs.
func VMSuite() []*bugs.Bug { return Suite("pbzip2", "curl", "apache-3") }

// vmRunConfig mirrors the differential suite's per-run configuration so
// the benchmark exercises exactly the runs the determinism tests pin.
func vmRunConfig(b *bugs.Bug, seed int64) vm.Config {
	cfg := vm.Config{Seed: seed, MaxSteps: 200_000, PreemptMean: 3}
	if b.PreemptMean > 0 {
		cfg.PreemptMean = b.PreemptMean
	}
	if len(b.Workloads) > 0 {
		cfg.Workload = b.Workloads[int(seed)%len(b.Workloads)]
	}
	return cfg
}

// VMPerf measures both engines over the suite. Programs are compiled
// outside the timer on both sides (the interpreter walks the IR
// directly; the bytecode program is compiled once), so the numbers
// compare steady-state execution, which is what the fleet amortizes to
// under the process-wide compile cache.
func VMPerf(suite []*bugs.Bug) (*VMResult, error) {
	if len(suite) == 0 {
		suite = VMSuite()
	}
	res := &VMResult{Experiment: "vm", GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, b := range suite {
		prog := b.Program()
		bp := bytecode.Compile(prog)
		interp := testing.Benchmark(func(tb *testing.B) {
			tb.ReportAllocs()
			for i := 0; i < tb.N; i++ {
				vm.Run(prog, vmRunConfig(b, int64(i%8)))
			}
		})
		bc := testing.Benchmark(func(tb *testing.B) {
			tb.ReportAllocs()
			for i := 0; i < tb.N; i++ {
				bp.Run(vmRunConfig(b, int64(i%8)))
			}
		})
		if interp.N == 0 || bc.N == 0 {
			return res, fmt.Errorf("vm: %s: benchmark executed no iterations", b.Name)
		}
		row := VMRow{
			Bug:              b.Name,
			InterpNSOp:       interp.NsPerOp(),
			BytecodeNSOp:     bc.NsPerOp(),
			InterpAllocsOp:   interp.AllocsPerOp(),
			BytecodeAllocsOp: bc.AllocsPerOp(),
		}
		if row.InterpNSOp > 0 {
			row.InterpRunsPerSec = 1e9 / float64(row.InterpNSOp)
		}
		if row.BytecodeNSOp > 0 {
			row.BytecodeRunsPerSec = 1e9 / float64(row.BytecodeNSOp)
			row.Speedup = float64(row.InterpNSOp) / float64(row.BytecodeNSOp)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// WriteJSON serializes the result (indented, trailing newline) to path.
func (r *VMResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ValidateVMJSON checks a BENCH_vm.json artifact: at least one row,
// live timings on both engines, the bytecode engine faster than the
// interpreter, and its hot path allocating less. The speedup floor here
// is deliberately 1× (is-it-actually-faster), not the target ratio —
// CI smoke runs on noisy shared machines; the committed BENCH_vm.json
// carries the pinned ratios.
func ValidateVMJSON(data []byte) error {
	var r VMResult
	if err := json.Unmarshal(data, &r); err != nil {
		return fmt.Errorf("bench json: %w", err)
	}
	if r.Experiment != "vm" {
		return fmt.Errorf("bench json: experiment %q, want vm", r.Experiment)
	}
	if r.GoMaxProcs < 1 {
		return fmt.Errorf("bench json: gomaxprocs %d", r.GoMaxProcs)
	}
	if len(r.Rows) == 0 {
		return fmt.Errorf("bench json: no vm rows")
	}
	for _, row := range r.Rows {
		if row.Bug == "" {
			return fmt.Errorf("bench json: vm row with no bug name")
		}
		if row.InterpNSOp <= 0 || row.BytecodeNSOp <= 0 {
			return fmt.Errorf("bench json: %s: non-positive ns/op (interp %d, bytecode %d)",
				row.Bug, row.InterpNSOp, row.BytecodeNSOp)
		}
		if row.Speedup <= 1 {
			return fmt.Errorf("bench json: %s: bytecode speedup %.2fx is not a speedup", row.Bug, row.Speedup)
		}
		if row.BytecodeAllocsOp >= row.InterpAllocsOp {
			return fmt.Errorf("bench json: %s: bytecode allocs/op %d not below interpreter's %d",
				row.Bug, row.BytecodeAllocsOp, row.InterpAllocsOp)
		}
	}
	return nil
}
