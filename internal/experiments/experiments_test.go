package experiments

import (
	"strings"
	"testing"

	"repro/internal/bugs"
	"repro/internal/core"
)

// fastSuite is a 3-bug subset (one concurrency UAF, one sequential, one
// atomicity violation) that keeps the unit tests quick; the full 11-bug
// sweep runs in the benchmark harness.
func fastSuite() []*bugs.Bug { return Suite("pbzip2", "curl", "apache-1") }

func TestSuiteSelection(t *testing.T) {
	if got := len(Suite()); got != 12 {
		t.Fatalf("full suite: %d", got)
	}
	if got := len(Suite("pbzip2", "nope", "curl")); got != 2 {
		t.Fatalf("subset: %d", got)
	}
}

func TestTable1Subset(t *testing.T) {
	rows, err := Table1(fastSuite())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		if r.SliceLOC <= 0 || r.SliceInstrs < r.SliceLOC {
			t.Errorf("%s: slice sizes LOC=%d instrs=%d", r.Bug, r.SliceLOC, r.SliceInstrs)
		}
		if r.SketchLOC <= 0 || r.SketchInstr <= 0 {
			t.Errorf("%s: sketch sizes LOC=%d instrs=%d", r.Bug, r.SketchLOC, r.SketchInstr)
		}
		if r.Recurrences < 1 || r.Recurrences > 8 {
			t.Errorf("%s: recurrences %d out of the paper's 2-5 ballpark", r.Bug, r.Recurrences)
		}
		if r.AvgOverheadPct <= 0 || r.AvgOverheadPct > 25 {
			t.Errorf("%s: overhead %.2f%% out of ballpark", r.Bug, r.AvgOverheadPct)
		}
		if r.DiscoveryRuns < 1 {
			t.Errorf("%s: no discovery runs", r.Bug)
		}
	}
	out := RenderTable1(rows)
	for _, frag := range []string{"pbzip2", "curl", "apache-1", "Static slice"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q", frag)
		}
	}
}

func TestFig9Subset(t *testing.T) {
	rows, err := Fig9(fastSuite())
	if err != nil {
		t.Fatal(err)
	}
	rel, ord, overall := Fig9Averages(rows)
	if rel < 50 || ord < 75 || overall < 60 {
		t.Errorf("accuracy averages too low: rel=%.1f ord=%.1f overall=%.1f", rel, ord, overall)
	}
	for _, r := range rows {
		if r.Ordering < 50 {
			t.Errorf("%s: ordering accuracy %.1f", r.Bug, r.Ordering)
		}
	}
	if out := RenderFig9(rows); !strings.Contains(out, "average") {
		t.Error("render missing average row")
	}
}

func TestFig10ShowsTechniqueContribution(t *testing.T) {
	rows, err := Fig10(Suite("pbzip2"))
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	// The full system must beat static-only for this bug (the null store
	// is invisible without data flow).
	if r.PlusDF < r.StaticOnly {
		t.Errorf("full system (%.1f) worse than static-only (%.1f)", r.PlusDF, r.StaticOnly)
	}
	if r.PlusDF < 60 {
		t.Errorf("full-system accuracy %.1f too low", r.PlusDF)
	}
	if out := RenderFig10(rows); !strings.Contains(out, "+data-flow") {
		t.Error("render header missing")
	}
}

func TestFig11OverheadGrowsWithSliceSize(t *testing.T) {
	points, err := Fig11(Suite("pbzip2", "apache-1"), []int{2, 8, 32}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points: %d", len(points))
	}
	if points[0].AvgOverheadPct <= 0 {
		t.Error("sigma=2 overhead should be positive")
	}
	if points[len(points)-1].AvgOverheadPct < points[0].AvgOverheadPct {
		t.Errorf("overhead should not shrink with slice size: %v", points)
	}
	if points[0].AvgOverheadPct > 15 {
		t.Errorf("sigma=2 overhead %.2f%% out of the paper's ballpark", points[0].AvgOverheadPct)
	}
	if out := RenderFig11(points); !strings.Contains(out, "slice size") {
		t.Error("render header missing")
	}
}

func TestFig12LatencyDropsWithLargerSigma(t *testing.T) {
	rows, err := Fig12(Suite("pbzip2"), []int{2, 16})
	if err != nil {
		t.Fatal(err)
	}
	small, large := rows[0], rows[1]
	if large.AvgLatency > small.AvgLatency {
		t.Errorf("larger sigma0 should not need more recurrences: sigma=2 %.1f vs sigma=16 %.1f",
			small.AvgLatency, large.AvgLatency)
	}
	if out := RenderFig12(rows); !strings.Contains(out, "sigma0") {
		t.Error("render header missing")
	}
}

func TestFig13ShapeHolds(t *testing.T) {
	rows, err := Fig13(fastSuite(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.IntelPTPct <= 0 || r.IntelPTPct > 40 {
			t.Errorf("%s: full PT tracing %.2f%% out of ballpark", r.Bug, r.IntelPTPct)
		}
		b := bugs.ByName(r.Bug)
		if b.Concurrency {
			// Threaded programs: rr loses the parallelism — orders of
			// magnitude worse than PT (the paper's Transmission/SQLite
			// bars go to infinity on this ratio).
			if r.MozillaRRPct < 10*r.IntelPTPct {
				t.Errorf("%s: record/replay (%.1f%%) should dwarf PT (%.2f%%)", r.Bug, r.MozillaRRPct, r.IntelPTPct)
			}
			if r.MozillaRRPct < 100 {
				t.Errorf("%s: record/replay %.1f%% suspiciously cheap for a parallel program", r.Bug, r.MozillaRRPct)
			}
		}
		// Single-threaded programs: rr is comparable to PT (the paper's
		// Cppcheck bar), so no lower bound there.
	}
	if out := RenderFig13(rows); !strings.Contains(out, "record/replay") {
		t.Error("render header missing")
	}
}

func TestSoftwarePTIsMuchSlower(t *testing.T) {
	rows := SoftwarePT(Suite("pbzip2"), 3)
	r := rows[0]
	if r.SoftwarePct < 20*r.HardwarePct {
		t.Errorf("software tracing (%.1f%%) should be far slower than hardware (%.2f%%)", r.SoftwarePct, r.HardwarePct)
	}
	if out := RenderSWPT(rows); !strings.Contains(out, "hardware") {
		t.Error("render header missing")
	}
}

func TestBreakdownShape(t *testing.T) {
	rows, err := Breakdown(Suite("pbzip2", "apache-1"), 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.FullPct <= 0 {
			t.Errorf("%s: zero full overhead", r.Bug)
		}
		// Full tracking costs at least as much as each component alone
		// (small tolerance: schedules differ slightly between configs).
		if r.FullPct+1 < r.CFOnlyPct || r.FullPct+1 < r.DFOnlyPct {
			t.Errorf("%s: full (%.2f) below components (cf=%.2f df=%.2f)", r.Bug, r.FullPct, r.CFOnlyPct, r.DFOnlyPct)
		}
	}
	if out := RenderBreakdown(rows); !strings.Contains(out, "ctrl-flow") {
		t.Error("render header missing")
	}
}

func TestSketchFigures(t *testing.T) {
	figs, err := SketchFigures()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 3 {
		t.Fatalf("figures: %d", len(figs))
	}
	for name, text := range figs {
		if !strings.Contains(text, "Failure Sketch for") {
			t.Errorf("%s: malformed sketch:\n%s", name, text)
		}
	}
	// Fig. 8's defining content: the double free and the refcount.
	if !strings.Contains(figs["apache-3"], "free(obj->data);") {
		t.Errorf("apache-3 sketch missing the double free:\n%s", figs["apache-3"])
	}
	// Fig. 1's defining content: the unlock of the freed mutex.
	if !strings.Contains(figs["pbzip2"], "unlock(f->mut);") {
		t.Errorf("pbzip2 sketch missing the unlock:\n%s", figs["pbzip2"])
	}
	// Fig. 7's defining content: strlen of the nulled pointer.
	if !strings.Contains(figs["curl"], "strlen(current)") {
		t.Errorf("curl sketch missing strlen:\n%s", figs["curl"])
	}
}

func TestDeveloperOracleStopsEarly(t *testing.T) {
	// With the oracle, the pbzip2 diagnosis should stop before exhausting
	// every AsT iteration, and the final sketch must satisfy the oracle.
	b := bugs.ByName("pbzip2")
	res, err := Diagnose(b, core.AllFeatures(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !DeveloperOracle(b)(res.Sketch) {
		t.Error("final sketch does not satisfy the developer oracle")
	}
	noOracle := b.GistConfig()
	full, err := core.Run(noOracle)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailureRecurrences > full.FailureRecurrences {
		t.Errorf("oracle run used more recurrences (%d) than the full run (%d)",
			res.FailureRecurrences, full.FailureRecurrences)
	}
}
