package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/bugs"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/service"
	"repro/internal/service/agent"
	"repro/internal/vm"
)

// IngestCell is one (bug, fault rate) cell of the ingest experiment.
type IngestCell struct {
	Bug       string  `json:"bug"`
	FaultRate float64 `json:"transport_fault_rate"`
	Signature string  `json:"signature"`
	// Reports is the cell's total submitted reports; Novel of them
	// launched the campaign, Folded were deduped into it.
	Reports int `json:"reports"`
	Novel   int `json:"novel"`
	Folded  int `json:"folded"`
	// DedupRatio is Reports per campaign launched.
	DedupRatio float64 `json:"dedup_ratio"`
	// Identical records that the streamed sketch — fetched through the
	// eviction/reload path — was byte-identical to the batch diagnosis.
	Identical bool `json:"identical"`
}

// IngestRateStats aggregates one fault rate's server-side evidence.
type IngestRateStats struct {
	FaultRate float64 `json:"transport_fault_rate"`
	// Submit-path admit latency (client-observed, includes retries).
	AdmitP50Ms float64 `json:"admit_p50_ms"`
	AdmitP95Ms float64 `json:"admit_p95_ms"`
	AdmitP99Ms float64 `json:"admit_p99_ms"`
	// ReportsPerSec is the sustained ingest rate over the submit phase.
	ReportsPerSec float64 `json:"reports_per_sec"`
	SubmitMS      float64 `json:"submit_ms"`

	NovelSignatures int64 `json:"novel_signatures"`
	FoldedReports   int64 `json:"folded_reports"`
	SketchReloads   int64 `json:"sketch_reloads"`
	LostTasks       int64 `json:"lost_tasks"`

	// Sketch cache occupancy at the end of the run; Bytes <= MaxBytes is
	// the flat-memory bound.
	CacheBytes    int64 `json:"cache_bytes"`
	CacheMaxBytes int64 `json:"cache_max_bytes"`
	CacheEntries  int   `json:"cache_entries"`
}

// IngestResult is the streaming-ingestion experiment, serialized by
// -json to BENCH_ingest.json: a duplicate-heavy failure-report stream
// against the service's ingest front-end, at two transport fault rates,
// with every streamed sketch byte-diffed against the batch diagnosis.
type IngestResult struct {
	Experiment string `json:"experiment"` // "ingest"
	// DupPerSignature is how many reports were filed per distinct
	// signature — the configured dedup ratio.
	DupPerSignature int      `json:"dup_per_signature"`
	Bugs            []string `json:"bugs"`
	GoMaxProcs      int      `json:"gomaxprocs"`
	// Identical is the aggregate: every cell's streamed sketch matched
	// its batch diagnosis byte for byte.
	Identical bool `json:"identical"`

	Cells []IngestCell      `json:"cells"`
	Rates []IngestRateStats `json:"rates"`
}

// ingestFaultRates are the two operating points the experiment proves
// byte-identity at, matching the service experiment's convention.
var ingestFaultRates = []float64{0, 0.10}

// IngestLoad replays a duplicate-heavy report stream: for every bug in
// the suite and both fault rates, one novel production failure report
// plus dupPerSig-1 recurrences submitted concurrently while the
// campaign runs. The server dedups on failure signature, so exactly one
// campaign launches per cell; the finished sketch is fetched through a
// deliberately tiny LRU cache (1 byte — every fetch re-renders from the
// checkpoint store) and must be byte-identical to the batch
// core.RunFromReport diagnosis of the same report.
func IngestLoad(suite []string, dupPerSig, agentsPerTenant int) (*IngestResult, error) {
	if dupPerSig < 2 {
		return nil, fmt.Errorf("ingest: dup-per-signature %d must be >= 2", dupPerSig)
	}
	if agentsPerTenant < 1 {
		agentsPerTenant = 2
	}
	res := &IngestResult{
		Experiment:      "ingest",
		DupPerSignature: dupPerSig,
		Bugs:            suite,
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		Identical:       true,
	}
	for _, rate := range ingestFaultRates {
		stats, cells, err := ingestOneRate(suite, dupPerSig, agentsPerTenant, rate)
		if err != nil {
			return res, err
		}
		res.Rates = append(res.Rates, *stats)
		res.Cells = append(res.Cells, cells...)
		for _, c := range cells {
			if !c.Identical {
				res.Identical = false
			}
		}
	}
	return res, nil
}

// ingestOneRate drives all suite cells against one server at one
// transport fault rate.
func ingestOneRate(suite []string, dupPerSig, agentsPerTenant int, rate float64) (*IngestRateStats, []IngestCell, error) {
	srv := service.NewServer(service.Options{
		LeaseTTL:        5 * time.Second,
		PollTimeout:     100 * time.Millisecond,
		MaxTaskAttempts: 10,
		// A 1-byte cache can hold nothing: every sketch fetch must
		// re-render from the durable checkpoint, so byte-identity below
		// proves the eviction/reload path, not just the hot path.
		SketchCacheBytes: 1,
	})
	defer srv.Close()
	transport := service.LoopbackTransport{Handler: srv.Handler()}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var agentWG sync.WaitGroup
	defer agentWG.Wait()
	defer cancel()

	var (
		mu             sync.Mutex
		latencies      []float64
		cells          []IngestCell
		lastSubmitDone time.Time
	)
	errs := make(chan error, len(suite))
	var cellWG sync.WaitGroup

	// Prepare every cell's batch oracle up front so the timed submit
	// phase measures ingestion, not in-process rediscovery: discover the
	// failure, then diagnose from that exact report — the stream must
	// reproduce these bytes.
	type cellPrep struct {
		tenant string
		report *vm.FailureReport
		disc   int
		want   []byte
	}
	preps := make([]cellPrep, len(suite))
	for bi, bugName := range suite {
		b := bugs.ByName(bugName)
		if b == nil {
			return nil, nil, fmt.Errorf("unknown bug %q", bugName)
		}
		tenant := fmt.Sprintf("tenant-%s", bugName)
		cfg := b.GistConfig()
		report, disc, err := core.FirstFailure(cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: discovery: %w", bugName, err)
		}
		batch, err := core.RunFromReport(cfg, report, disc)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: batch diagnosis: %w", bugName, err)
		}
		want, err := batch.Sketch.MarshalIndentJSON()
		if err != nil {
			return nil, nil, err
		}
		preps[bi] = cellPrep{tenant: tenant, report: report, disc: disc, want: want}

		for a := 0; a < agentsPerTenant; a++ {
			ag, err := agent.New(agent.Config{
				Server:    "http://gist",
				Tenant:    tenant,
				ID:        fmt.Sprintf("ep-%03d-%03d", bi, a),
				Poll:      50 * time.Millisecond,
				Faults:    faults.Transport(int64(bi*1000+a+1), rate),
				Transport: transport,
				Sleep:     func(time.Duration) {},
			})
			if err != nil {
				return nil, nil, err
			}
			agentWG.Add(1)
			go func() {
				defer agentWG.Done()
				_ = ag.Run(ctx)
			}()
		}
	}

	// The timed submit phase: every cell streams its reports at once.
	start := time.Now()
	for bi, bugName := range suite {
		p := preps[bi]
		report, disc, want := p.report, p.disc, p.want
		cellWG.Add(1)
		go func(bi int, bugName, tenant string) {
			defer cellWG.Done()
			newClient := func(actor string, seed int64) *service.Client {
				return service.NewClient(service.ClientOptions{
					BaseURL:   "http://gist",
					Tenant:    tenant,
					Actor:     actor,
					Faults:    faults.Transport(seed, rate),
					Transport: transport,
					Sleep:     func(time.Duration) {},
				})
			}
			submit := func(cli *service.Client, seed int64) (*service.SubmitResponse, error) {
				var resp service.SubmitResponse
				req := &service.SubmitRequest{
					Tenant: tenant, Bug: bugName,
					Report: report, Seed: seed, DiscoveryRuns: disc,
				}
				t0 := time.Now()
				err := cli.Call(ctx, service.PathSubmit, req, &resp)
				d := float64(time.Since(t0).Microseconds()) / 1000
				mu.Lock()
				latencies = append(latencies, d)
				mu.Unlock()
				return &resp, err
			}

			// The novel report launches the campaign...
			first, err := submit(newClient("submit-0", int64(7000+bi)), int64(bi))
			if err != nil {
				errs <- fmt.Errorf("%s: submit: %w", bugName, err)
				return
			}
			// A faulty transport may duplicate the novel delivery, in
			// which case the response the client sees is the second
			// delivery's fold — fine: exactly one campaign launched, and
			// NovelSignatures (checked per rate below) proves it. Only a
			// clean wire makes a Duplicate first response an error.
			if first.Duplicate && rate == 0 {
				errs <- fmt.Errorf("%s: first report reported duplicate", bugName)
				return
			}
			// ...and the recurrences race it from concurrent submitters
			// while the campaign is running.
			const submitters = 4
			var dupWG sync.WaitGroup
			for w := 0; w < submitters; w++ {
				dupWG.Add(1)
				go func(w int) {
					defer dupWG.Done()
					cli := newClient(fmt.Sprintf("submit-%d", w+1), int64(8000+bi*10+w))
					for j := w; j < dupPerSig-1; j += submitters {
						resp, err := submit(cli, int64(100+j))
						if err != nil {
							errs <- fmt.Errorf("%s: dup submit: %w", bugName, err)
							return
						}
						if !resp.Duplicate {
							errs <- fmt.Errorf("%s: recurrence launched a second campaign", bugName)
							return
						}
					}
				}(w)
			}
			dupWG.Wait()
			mu.Lock()
			if t := time.Now(); t.After(lastSubmitDone) {
				lastSubmitDone = t
			}
			mu.Unlock()

			sig := first.Signature
			if !srv.WaitCampaignSig(tenant, bugName, sig) {
				errs <- fmt.Errorf("%s: campaign vanished", bugName)
				return
			}
			cli := newClient("fetch", int64(9000+bi))
			var sk service.SketchResponse
			if err := cli.Call(ctx, service.PathSketch,
				&service.SketchRequest{Tenant: tenant, Bug: bugName, Signature: sig}, &sk); err != nil {
				errs <- fmt.Errorf("%s: sketch: %w", bugName, err)
				return
			}
			if !sk.Ready {
				var st service.StatusResponse
				_ = cli.Call(ctx, service.PathStatus,
					&service.StatusRequest{Tenant: tenant, Bug: bugName, Signature: sig}, &st)
				errs <- fmt.Errorf("%s: campaign finished without a sketch (state=%s err=%q)", bugName, st.State, st.Err)
				return
			}
			cell := IngestCell{
				Bug: bugName, FaultRate: rate, Signature: sig,
				Reports: dupPerSig, Novel: 1, Folded: dupPerSig - 1,
				DedupRatio: float64(dupPerSig),
				Identical:  bytes.Equal(sk.Sketch, want),
			}
			mu.Lock()
			cells = append(cells, cell)
			mu.Unlock()
			if !cell.Identical {
				errs <- fmt.Errorf("%s: streamed sketch differs from batch diagnosis", bugName)
			}
		}(bi, bugName, p.tenant)
	}

	cellWG.Wait()
	close(errs)
	for err := range errs {
		return nil, nil, err
	}

	mu.Lock()
	sort.Float64s(latencies)
	submitElapsed := lastSubmitDone.Sub(start)
	stats := &IngestRateStats{
		FaultRate:     rate,
		AdmitP50Ms:    percentileOf(latencies, 0.50),
		AdmitP95Ms:    percentileOf(latencies, 0.95),
		AdmitP99Ms:    percentileOf(latencies, 0.99),
		SubmitMS:      float64(submitElapsed.Microseconds()) / 1000,
		ReportsPerSec: float64(len(latencies)) / submitElapsed.Seconds(),
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].Bug < cells[j].Bug })
	out := append([]IngestCell(nil), cells...)
	mu.Unlock()

	counters, _ := srv.Snapshot()
	stats.NovelSignatures = counters.NovelSignatures
	stats.FoldedReports = counters.FoldedReports
	stats.SketchReloads = counters.SketchReloads
	stats.LostTasks = counters.LostTasks
	cache := srv.CacheStats()
	stats.CacheBytes = cache.Bytes
	stats.CacheMaxBytes = cache.MaxBytes
	stats.CacheEntries = cache.Entries
	return stats, out, nil
}

// percentileOf reads the p-quantile from a sorted slice.
func percentileOf(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// WriteJSON writes the artifact.
func (r *IngestResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// RenderIngest renders the ingest experiment for the terminal.
func RenderIngest(r *IngestResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Streaming ingestion: %d bugs × %d reports/signature × fault rates {0, 10%%}\n\n",
		len(r.Bugs), r.DupPerSignature)
	fmt.Fprintf(&sb, "sketches byte-identical to batch diagnosis (via cache-evict/reload): %v\n\n", r.Identical)
	for _, s := range r.Rates {
		fmt.Fprintf(&sb, "fault rate %.0f%%: %.0f reports/sec sustained, admit p50/p95/p99 = %.3f/%.3f/%.3f ms\n",
			s.FaultRate*100, s.ReportsPerSec, s.AdmitP50Ms, s.AdmitP95Ms, s.AdmitP99Ms)
		fmt.Fprintf(&sb, "  %d campaigns launched, %d reports folded, %d sketch reloads, cache %d/%d bytes\n",
			s.NovelSignatures, s.FoldedReports, s.SketchReloads, s.CacheBytes, s.CacheMaxBytes)
	}
	fmt.Fprintf(&sb, "\n%-14s %6s %8s %7s %7s %11s  %s\n", "bug", "rate", "reports", "novel", "folded", "dedup", "identical")
	for _, c := range r.Cells {
		fmt.Fprintf(&sb, "%-14s %5.0f%% %8d %7d %7d %10.1f:1  %v\n",
			c.Bug, c.FaultRate*100, c.Reports, c.Novel, c.Folded, c.DedupRatio, c.Identical)
	}
	return sb.String()
}

// ValidateIngestJSON checks the ingest schema: full bug × rate
// coverage, the >= 10:1 dedup floor, byte-identity everywhere, monotone
// admit percentiles, and the cache's flat-memory bound.
func ValidateIngestJSON(data []byte) error {
	var r IngestResult
	if err := json.Unmarshal(data, &r); err != nil {
		return fmt.Errorf("bench json: %w", err)
	}
	if r.Experiment != "ingest" {
		return fmt.Errorf("bench json: experiment %q, want ingest", r.Experiment)
	}
	if len(r.Bugs) == 0 {
		return fmt.Errorf("bench json: no bugs recorded")
	}
	if r.DupPerSignature < 10 {
		return fmt.Errorf("bench json: dup_per_signature %d below the 10:1 dedup floor", r.DupPerSignature)
	}
	if !r.Identical {
		return fmt.Errorf("bench json: streamed sketches were not byte-identical to batch diagnoses")
	}
	if len(r.Rates) != len(ingestFaultRates) {
		return fmt.Errorf("bench json: %d rate rows, want %d", len(r.Rates), len(ingestFaultRates))
	}
	seen := map[string]map[float64]bool{}
	for _, c := range r.Cells {
		if !c.Identical {
			return fmt.Errorf("bench json: cell %s@%g not byte-identical", c.Bug, c.FaultRate)
		}
		if c.Novel != 1 {
			return fmt.Errorf("bench json: cell %s@%g launched %d campaigns, want exactly 1", c.Bug, c.FaultRate, c.Novel)
		}
		if c.Reports != c.Novel+c.Folded {
			return fmt.Errorf("bench json: cell %s@%g report accounting broken: %d != %d+%d",
				c.Bug, c.FaultRate, c.Reports, c.Novel, c.Folded)
		}
		if c.DedupRatio < 10 {
			return fmt.Errorf("bench json: cell %s@%g dedup ratio %.1f below 10:1", c.Bug, c.FaultRate, c.DedupRatio)
		}
		if c.Signature == "" {
			return fmt.Errorf("bench json: cell %s@%g has no signature", c.Bug, c.FaultRate)
		}
		if seen[c.Bug] == nil {
			seen[c.Bug] = map[float64]bool{}
		}
		seen[c.Bug][c.FaultRate] = true
	}
	for _, bug := range r.Bugs {
		for _, rate := range ingestFaultRates {
			if !seen[bug][rate] {
				return fmt.Errorf("bench json: missing cell %s@%g", bug, rate)
			}
		}
	}
	for _, s := range r.Rates {
		if s.AdmitP50Ms < 0 || s.AdmitP50Ms > s.AdmitP95Ms || s.AdmitP95Ms > s.AdmitP99Ms {
			return fmt.Errorf("bench json: rate %g admit percentiles not monotone: p50=%g p95=%g p99=%g",
				s.FaultRate, s.AdmitP50Ms, s.AdmitP95Ms, s.AdmitP99Ms)
		}
		if s.ReportsPerSec <= 0 || s.SubmitMS <= 0 {
			return fmt.Errorf("bench json: rate %g records no sustained ingest rate", s.FaultRate)
		}
		if s.NovelSignatures != int64(len(r.Bugs)) {
			return fmt.Errorf("bench json: rate %g launched %d campaigns, want %d", s.FaultRate, s.NovelSignatures, len(r.Bugs))
		}
		if s.SketchReloads < int64(len(r.Bugs)) {
			return fmt.Errorf("bench json: rate %g shows %d sketch reloads; the tiny cache must force at least one per bug",
				s.FaultRate, s.SketchReloads)
		}
		if s.CacheMaxBytes > 0 && s.CacheBytes > s.CacheMaxBytes {
			return fmt.Errorf("bench json: rate %g sketch cache over budget: %d > %d bytes",
				s.FaultRate, s.CacheBytes, s.CacheMaxBytes)
		}
	}
	return nil
}
