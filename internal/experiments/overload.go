package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/bugs"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/service"
	"repro/internal/service/agent"
	"repro/internal/vm"
)

// OverloadOptions scales the overload experiment. The zero value gets
// the BENCH defaults; the smoke test shrinks every knob.
type OverloadOptions struct {
	// Bug is the diagnosis every tenant submits (default "deadlock",
	// the cheapest suite bug — the experiment is about admission, not
	// the diagnosis).
	Bug string
	// Victims is the number of well-behaved tenants (default 3).
	Victims int
	// AgentsPerTenant is each tenant's endpoint fleet (default 3).
	AgentsPerTenant int
	// FoldsPerVictim is how many recurrence reports each victim files
	// after its novel one (default 30).
	FoldsPerVictim int
	// TenantRPS/TenantBurst are the server's per-tenant rate limit
	// (defaults 50 and 20).
	TenantRPS   float64
	TenantBurst int
	// MaxInflight/LaunchBudget cap concurrent campaigns and the launch
	// queue (defaults 3 and 1: the victims fill the slots, the flooder's
	// own campaign fills the queue, and its novel burst must shed).
	MaxInflight  int
	LaunchBudget int
	// HedgeAfter floors the hedged-dispatch threshold (default 50ms).
	HedgeAfter time.Duration
	// SlowRate/SlowMeanMs configure the slow-agent fault class for the
	// slow mixes (defaults 0.2 and 400: a fifth of the tasks stall far
	// past HedgeAfter, so hedges must fire).
	SlowRate   float64
	SlowMeanMs int
	// NovelBurst is how many distinct crafted signatures the flooder
	// fires at the full launch queue (default 16).
	NovelBurst int
}

func (o OverloadOptions) withDefaults() OverloadOptions {
	if o.Bug == "" {
		o.Bug = "deadlock"
	}
	if o.Victims <= 0 {
		o.Victims = 3
	}
	if o.AgentsPerTenant <= 0 {
		o.AgentsPerTenant = 3
	}
	if o.FoldsPerVictim <= 0 {
		o.FoldsPerVictim = 30
	}
	if o.TenantRPS <= 0 {
		o.TenantRPS = 50
	}
	if o.TenantBurst <= 0 {
		o.TenantBurst = 20
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = o.Victims
	}
	if o.LaunchBudget <= 0 {
		o.LaunchBudget = 1
	}
	if o.HedgeAfter <= 0 {
		o.HedgeAfter = 50 * time.Millisecond
	}
	if o.SlowRate <= 0 {
		o.SlowRate = 0.2
	}
	if o.SlowMeanMs <= 0 {
		o.SlowMeanMs = 400
	}
	if o.NovelBurst <= 0 {
		o.NovelBurst = 16
	}
	return o
}

// OverloadMix is one operating point of the sweep: an offered-load
// multiple for the flooding tenant crossed with the slow-agent fault
// class.
type OverloadMix struct {
	Name string `json:"name"`
	// FloodFactor is the flooding tenant's offered load as a multiple
	// of the per-tenant rate limit (0 = no flooder).
	FloodFactor float64 `json:"flood_factor"`
	// SlowAgents marks the 20%-slow-agent fault class active.
	SlowAgents bool `json:"slow_agents"`

	// Victim-side traffic: every submit from a non-flooding tenant.
	VictimReports  int     `json:"victim_reports"`
	VictimAdmitted int     `json:"victim_admitted"`
	GoodputPerSec  float64 `json:"goodput_per_sec"`
	// Client-observed admit latency for victim tenants only — the
	// isolation criterion compares these against the unloaded baseline.
	AdmitP50Ms float64 `json:"admit_p50_ms"`
	AdmitP95Ms float64 `json:"admit_p95_ms"`
	AdmitP99Ms float64 `json:"admit_p99_ms"`
	// End-to-end diagnosis latency (novel submit → sketch fetched).
	E2EP50Ms float64 `json:"e2e_p50_ms"`
	E2EMaxMs float64 `json:"e2e_max_ms"`

	// Flood-side traffic, client-observed (one-shot submits, no retry).
	FloodOffered  int     `json:"flood_offered"`
	FloodAdmitted int     `json:"flood_admitted"`
	FloodShed     int     `json:"flood_shed"`
	FloodShedRate float64 `json:"flood_shed_rate"`

	// Server counters after the mix.
	ShedRateLimited   int64   `json:"shed_rate_limited"`
	ShedLaunches      int64   `json:"shed_launches"`
	HedgedTasks       int64   `json:"hedged_tasks"`
	HedgedResults     int64   `json:"hedged_results"`
	DeadlineExpired   int64   `json:"deadline_expired"`
	MaxQueuedLaunches int     `json:"max_queued_launches"`
	HeapAllocMB       float64 `json:"heap_alloc_mb"`

	// Identical records that every completed diagnosis in this mix —
	// including hedged-dispatch results — was byte-identical to the
	// local batch oracle.
	Identical bool `json:"identical"`
	Sketches  int  `json:"sketches"`
}

// OverloadResult is the overload experiment, serialized by -json to
// BENCH_overload.json: an offered-load sweep (no flood, 4×, 10× the
// per-tenant rate limit) crossed with the slow-agent fault class,
// against a server running the full admission-control stack.
type OverloadResult struct {
	Experiment string `json:"experiment"` // "overload"
	Bug        string `json:"bug"`
	Victims    int    `json:"victims"`
	GoMaxProcs int    `json:"gomaxprocs"`

	TenantRPS    float64 `json:"tenant_rps"`
	MaxInflight  int     `json:"max_inflight"`
	LaunchBudget int     `json:"launch_budget"`
	HedgeAfterMs int64   `json:"hedge_after_ms"`

	// Identical aggregates every mix's byte-identity verdict.
	Identical bool          `json:"identical"`
	Mixes     []OverloadMix `json:"mixes"`
}

// overloadMixes is the sweep: the baseline anchors the isolation
// criterion, the flood rows sweep offered load, the slow rows add the
// degraded-endpoint fault class, and the last row is the acceptance
// mix (10× flood + slow agents at once).
var overloadMixes = []struct {
	name  string
	flood float64
	slow  bool
}{
	{"baseline", 0, false},
	{"flood-4x", 4, false},
	{"flood-10x", 10, false},
	{"slow", 0, true},
	{"flood-slow-10x", 10, true},
}

// Overload drives the sweep. Each mix gets a fresh server (loopback
// transport — no sockets) with per-tenant token buckets, the in-flight
// cap and launch budget, hedged dispatch, and deadline propagation all
// active; victims submit normally while a flooding tenant offers
// FloodFactor× the rate limit. Every completed sketch is byte-diffed
// against one batch diagnosis of the same failure report.
func Overload(opts OverloadOptions) (*OverloadResult, error) {
	opts = opts.withDefaults()
	b := bugs.ByName(opts.Bug)
	if b == nil {
		return nil, fmt.Errorf("overload: unknown bug %q", opts.Bug)
	}

	// One batch oracle for every tenant and mix: the submitted report is
	// fixed, so every admitted diagnosis must reproduce these bytes.
	cfg := b.GistConfig()
	report, disc, err := core.FirstFailure(cfg)
	if err != nil {
		return nil, fmt.Errorf("overload: discovery: %w", err)
	}
	batch, err := core.RunFromReport(cfg, report, disc)
	if err != nil {
		return nil, fmt.Errorf("overload: batch diagnosis: %w", err)
	}
	want, err := batch.Sketch.MarshalIndentJSON()
	if err != nil {
		return nil, err
	}

	res := &OverloadResult{
		Experiment:   "overload",
		Bug:          opts.Bug,
		Victims:      opts.Victims,
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		TenantRPS:    opts.TenantRPS,
		MaxInflight:  opts.MaxInflight,
		LaunchBudget: opts.LaunchBudget,
		HedgeAfterMs: opts.HedgeAfter.Milliseconds(),
		Identical:    true,
	}
	for _, m := range overloadMixes {
		mix, err := overloadOneMix(opts, m.name, m.flood, m.slow, report, disc, want)
		if err != nil {
			return res, fmt.Errorf("overload: mix %s: %w", m.name, err)
		}
		if !mix.Identical {
			res.Identical = false
		}
		res.Mixes = append(res.Mixes, *mix)
	}
	return res, nil
}

// overloadOneMix runs one operating point end to end.
func overloadOneMix(opts OverloadOptions, name string, flood float64, slow bool,
	report *vm.FailureReport, disc int, want []byte) (*OverloadMix, error) {

	mix := &OverloadMix{Name: name, FloodFactor: flood, SlowAgents: slow, Identical: true}
	srv := service.NewServer(service.Options{
		LeaseTTL:        5 * time.Second,
		PollTimeout:     100 * time.Millisecond,
		MaxTaskAttempts: 10,
		TenantRPS:       opts.TenantRPS,
		TenantBurst:     opts.TenantBurst,
		MaxInflight:     opts.MaxInflight,
		LaunchBudget:    opts.LaunchBudget,
		HedgeAfter:      opts.HedgeAfter,
		ConfigFor: func(bug string) (core.Config, error) {
			bb := bugs.ByName(bug)
			if bb == nil {
				return core.Config{}, fmt.Errorf("unknown bug %q", bug)
			}
			cfg := bb.GistConfig()
			if slow {
				// The slow-agent class lives in its own keyed fault
				// stream: only timing changes, never trace bytes, so the
				// byte-identity assertion below still holds.
				cfg.Faults = faults.Slowdown(99, opts.SlowRate, opts.SlowMeanMs)
			}
			return cfg, nil
		},
	})
	defer srv.Close()
	transport := service.LoopbackTransport{Handler: srv.Handler()}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var agentWG sync.WaitGroup
	defer agentWG.Wait()
	defer cancel()

	tenants := make([]string, 0, opts.Victims+1)
	for v := 0; v < opts.Victims; v++ {
		tenants = append(tenants, fmt.Sprintf("victim-%d", v))
	}
	flooder := "flooder"
	if flood > 0 {
		tenants = append(tenants, flooder)
	}
	for ti, tenant := range tenants {
		for a := 0; a < opts.AgentsPerTenant; a++ {
			ag, err := agent.New(agent.Config{
				Server:    "http://gist",
				Tenant:    tenant,
				ID:        fmt.Sprintf("ep-%02d-%02d", ti, a),
				Poll:      50 * time.Millisecond,
				Transport: transport,
				Sleep:     func(time.Duration) {},
			})
			if err != nil {
				return nil, err
			}
			agentWG.Add(1)
			go func() {
				defer agentWG.Done()
				_ = ag.Run(ctx)
			}()
		}
	}

	newClient := func(tenant, actor string, oneShot bool) *service.Client {
		co := service.ClientOptions{
			BaseURL:   "http://gist",
			Tenant:    tenant,
			Actor:     actor,
			Transport: transport,
		}
		if oneShot {
			// The flooder takes no for an answer: one attempt, no
			// backoff — shed means shed, which is what we count.
			co.MaxAttempts = 1
			co.Sleep = func(time.Duration) {}
		}
		return service.NewClient(co)
	}

	var (
		mu        sync.Mutex
		admitLat  []float64 // victim submits, client-observed ms
		e2eLat    []float64
		victimOK  int
		victimAll int
	)
	errs := make(chan error, 128)
	submitDone := make(chan struct{}) // closed when every victim finished submitting
	var submitWG, victimWG, floodWG sync.WaitGroup

	// The flooder: its own legitimate campaign first (filling the launch
	// queue behind the victims' slots), then a burst of distinct crafted
	// signatures against the full queue (launch-budget sheds), then
	// sustained recurrence spam at flood× the rate limit (token-bucket
	// sheds) until the victims are done submitting.
	if flood > 0 {
		floodWG.Add(1)
		go func() {
			defer floodWG.Done()
			cli := newClient(flooder, "flood-submit", false)
			if err := cli.Call(ctx, service.PathSubmit, &service.SubmitRequest{
				Tenant: flooder, Bug: opts.Bug, Report: report, Seed: 1, DiscoveryRuns: disc,
			}, nil); err != nil {
				errs <- fmt.Errorf("flooder novel submit: %w", err)
				return
			}
			time.Sleep(50 * time.Millisecond) // let every campaign register

			shot := newClient(flooder, "flood-shots", true)
			offered, admitted, shed := 0, 0, 0
			fire := func(req *service.SubmitRequest) {
				offered++
				err := shot.Call(ctx, service.PathSubmit, req, nil)
				if err == nil {
					admitted++
					return
				}
				var se *service.StatusError
				if errors.As(err, &se) && se.Code == http.StatusTooManyRequests {
					shed++
					return
				}
				// Anything but a 429 is a real failure, not backpressure.
				select {
				case errs <- fmt.Errorf("flood submit: %v", err):
				default:
				}
			}
			for i := 0; i < opts.NovelBurst; i++ {
				// A distinct signature per shot — an extra stack frame
				// feeds the signature hash but not the slice roots — on an
				// otherwise-real report, so a shot that wins an admission
				// race (victim slots turn over fast on a cheap bug) still
				// diagnoses cleanly.
				novel := *report
				novel.Stack = append([]vm.StackEntry{{Fn: "flood", CallSiteID: 900_000 + i}},
					report.Stack...)
				fire(&service.SubmitRequest{
					Tenant: flooder, Bug: opts.Bug, Seed: int64(i), Report: &novel,
				})
			}
			pace := faults.NewFlood(7, flood*opts.TenantRPS, 10)
			for {
				select {
				case <-submitDone:
					mu.Lock()
					mix.FloodOffered = offered
					mix.FloodAdmitted = admitted
					mix.FloodShed = shed
					if offered > 0 {
						mix.FloodShedRate = float64(shed) / float64(offered)
					}
					mu.Unlock()
					return
				case <-ctx.Done():
					return
				default:
				}
				if d := pace.Next(); d > 0 {
					time.Sleep(d)
				}
				fire(&service.SubmitRequest{Tenant: flooder, Bug: opts.Bug, Report: report, Seed: 2})
			}
		}()
	}

	// The victims: one novel report each (with a generous propagated
	// deadline, exercising the deadline plumbing without tripping it),
	// then paced recurrence folds — comfortably inside the rate limit,
	// so any shed here is an isolation failure.
	start := time.Now()
	for v := 0; v < opts.Victims; v++ {
		tenant := fmt.Sprintf("victim-%d", v)
		submitWG.Add(1)
		victimWG.Add(1)
		go func(v int, tenant string) {
			defer victimWG.Done()
			submitted := false
			defer func() {
				if !submitted {
					submitWG.Done()
				}
			}()
			cli := newClient(tenant, "submit", false)
			submit := func(req *service.SubmitRequest) (*service.SubmitResponse, error) {
				var resp service.SubmitResponse
				t0 := time.Now()
				err := cli.Call(ctx, service.PathSubmit, req, &resp)
				d := float64(time.Since(t0).Microseconds()) / 1000
				mu.Lock()
				victimAll++
				if err == nil {
					victimOK++
					admitLat = append(admitLat, d)
				}
				mu.Unlock()
				return &resp, err
			}
			t0 := time.Now()
			first, err := submit(&service.SubmitRequest{
				Tenant: tenant, Bug: opts.Bug, Report: report,
				Seed: int64(v), DiscoveryRuns: disc, DeadlineMs: 120_000,
			})
			if err != nil {
				errs <- fmt.Errorf("%s: novel submit: %w", tenant, err)
				return
			}
			for j := 0; j < opts.FoldsPerVictim; j++ {
				time.Sleep(25 * time.Millisecond)
				resp, err := submit(&service.SubmitRequest{
					Tenant: tenant, Bug: opts.Bug, Report: report, Seed: int64(100 + j),
				})
				if err != nil {
					errs <- fmt.Errorf("%s: fold %d: %w", tenant, j, err)
					return
				}
				if !resp.Duplicate {
					errs <- fmt.Errorf("%s: fold %d launched a second campaign", tenant, j)
					return
				}
			}
			submitted = true
			submitWG.Done()

			if !srv.WaitCampaignSig(tenant, opts.Bug, first.Signature) {
				errs <- fmt.Errorf("%s: campaign vanished", tenant)
				return
			}
			var sk service.SketchResponse
			if err := cli.Call(ctx, service.PathSketch, &service.SketchRequest{
				Tenant: tenant, Bug: opts.Bug, Signature: first.Signature,
			}, &sk); err != nil || !sk.Ready {
				errs <- fmt.Errorf("%s: sketch fetch: ready=%v err=%v", tenant, sk.Ready, err)
				return
			}
			ident := bytes.Equal(sk.Sketch, want)
			mu.Lock()
			e2eLat = append(e2eLat, float64(time.Since(t0).Microseconds())/1000)
			mix.Sketches++
			if !ident {
				mix.Identical = false
			}
			mu.Unlock()
			if !ident {
				errs <- fmt.Errorf("%s: sketch differs from batch diagnosis", tenant)
			}
		}(v, tenant)
	}
	go func() {
		submitWG.Wait()
		mu.Lock()
		elapsed := time.Since(start).Seconds()
		if elapsed > 0 {
			mix.GoodputPerSec = float64(victimOK) / elapsed
		}
		mu.Unlock()
		close(submitDone)
	}()
	victimWG.Wait()
	floodWG.Wait()

	// The flooder's own campaign must finish and match too — it queued
	// behind the victims, so this also proves the launch queue drains.
	if flood > 0 {
		<-submitDone
		if !srv.WaitCampaignSig(flooder, opts.Bug, report.ID()) {
			return nil, fmt.Errorf("flooder campaign vanished")
		}
		cli := newClient(flooder, "flood-fetch", false)
		var sk service.SketchResponse
		sig := report.ID()
		if err := cli.Call(ctx, service.PathSketch, &service.SketchRequest{
			Tenant: flooder, Bug: opts.Bug, Signature: sig,
		}, &sk); err == nil && sk.Ready {
			mix.Sketches++
			if !bytes.Equal(sk.Sketch, want) {
				mix.Identical = false
				errs <- fmt.Errorf("flooder sketch differs from batch diagnosis")
			}
		}
	}

	close(errs)
	for err := range errs {
		return nil, err
	}

	mu.Lock()
	sort.Float64s(admitLat)
	sort.Float64s(e2eLat)
	mix.VictimReports = victimAll
	mix.VictimAdmitted = victimOK
	mix.AdmitP50Ms = percentileOf(admitLat, 0.50)
	mix.AdmitP95Ms = percentileOf(admitLat, 0.95)
	mix.AdmitP99Ms = percentileOf(admitLat, 0.99)
	mix.E2EP50Ms = percentileOf(e2eLat, 0.50)
	if n := len(e2eLat); n > 0 {
		mix.E2EMaxMs = e2eLat[n-1]
	}
	mu.Unlock()

	c, _ := srv.Snapshot()
	mix.ShedRateLimited = c.ShedRateLimited
	mix.ShedLaunches = c.ShedLaunches
	mix.HedgedTasks = c.HedgedTasks
	mix.HedgedResults = c.HedgedResults
	mix.DeadlineExpired = c.DeadlineExpired
	mix.MaxQueuedLaunches = srv.Health().MaxQueuedLaunches
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	mix.HeapAllocMB = float64(ms.HeapAlloc) / (1 << 20)
	return mix, nil
}

// WriteJSON writes the artifact.
func (r *OverloadResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// RenderOverload renders the overload experiment for the terminal.
func RenderOverload(r *OverloadResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Overload: %d victim tenants diagnosing %s, rate limit %g/s, %d in-flight + %d queued launches, hedge after %dms\n\n",
		r.Victims, r.Bug, r.TenantRPS, r.MaxInflight, r.LaunchBudget, r.HedgeAfterMs)
	fmt.Fprintf(&sb, "all admitted sketches byte-identical to batch diagnosis: %v\n\n", r.Identical)
	fmt.Fprintf(&sb, "%-15s %6s %5s %8s %9s %7s %7s %6s %6s %9s %6s\n",
		"mix", "flood", "slow", "goodput", "admit p99", "e2e max", "shed", "rlim", "launch", "hedged", "maxQ")
	for _, m := range r.Mixes {
		fmt.Fprintf(&sb, "%-15s %5.0fx %5v %7.1f/s %7.2fms %5.0fms %6.0f%% %6d %6d %4d/%-4d %6d\n",
			m.Name, m.FloodFactor, m.SlowAgents, m.GoodputPerSec, m.AdmitP99Ms, m.E2EMaxMs,
			m.FloodShedRate*100, m.ShedRateLimited, m.ShedLaunches, m.HedgedTasks, m.HedgedResults, m.MaxQueuedLaunches)
	}
	return sb.String()
}

// ValidateOverloadJSON checks the overload schema: the sweep covers the
// baseline, the 10× flood, and the acceptance mix (10× flood + slow
// agents); every mix is byte-identical with a bounded launch queue;
// flood mixes shed (both gates) without degrading victim p99 past 2×
// the baseline; slow mixes hedge.
func ValidateOverloadJSON(data []byte) error {
	var r OverloadResult
	if err := json.Unmarshal(data, &r); err != nil {
		return fmt.Errorf("bench json: %w", err)
	}
	if r.Experiment != "overload" {
		return fmt.Errorf("bench json: experiment %q, want overload", r.Experiment)
	}
	if !r.Identical {
		return fmt.Errorf("bench json: admitted sketches were not byte-identical to batch diagnoses")
	}
	if r.TenantRPS <= 0 || r.MaxInflight <= 0 || r.LaunchBudget <= 0 {
		return fmt.Errorf("bench json: admission knobs not recorded (rps=%g inflight=%d budget=%d)",
			r.TenantRPS, r.MaxInflight, r.LaunchBudget)
	}
	byName := map[string]*OverloadMix{}
	for i := range r.Mixes {
		byName[r.Mixes[i].Name] = &r.Mixes[i]
	}
	for _, want := range []string{"baseline", "flood-10x", "flood-slow-10x"} {
		if byName[want] == nil {
			return fmt.Errorf("bench json: missing mix %q", want)
		}
	}
	base := byName["baseline"]
	// Floor the baseline at 5ms so a sub-millisecond idle p99 does not
	// turn the 2× isolation bound into noise-chasing.
	baseP99 := base.AdmitP99Ms
	if baseP99 < 5 {
		baseP99 = 5
	}
	for _, m := range r.Mixes {
		if !m.Identical {
			return fmt.Errorf("bench json: mix %s not byte-identical", m.Name)
		}
		if m.Sketches < r.Victims {
			return fmt.Errorf("bench json: mix %s completed %d sketches, want >= %d", m.Name, m.Sketches, r.Victims)
		}
		if m.VictimAdmitted <= 0 || m.GoodputPerSec <= 0 {
			return fmt.Errorf("bench json: mix %s records no victim goodput", m.Name)
		}
		if m.AdmitP50Ms < 0 || m.AdmitP50Ms > m.AdmitP95Ms || m.AdmitP95Ms > m.AdmitP99Ms {
			return fmt.Errorf("bench json: mix %s admit percentiles not monotone: p50=%g p95=%g p99=%g",
				m.Name, m.AdmitP50Ms, m.AdmitP95Ms, m.AdmitP99Ms)
		}
		if m.MaxQueuedLaunches > r.LaunchBudget {
			return fmt.Errorf("bench json: mix %s launch queue peaked at %d, over the %d budget",
				m.Name, m.MaxQueuedLaunches, r.LaunchBudget)
		}
		if m.HeapAllocMB <= 0 || m.HeapAllocMB > 2048 {
			return fmt.Errorf("bench json: mix %s heap %gMB outside (0, 2048]", m.Name, m.HeapAllocMB)
		}
		if m.DeadlineExpired != 0 {
			return fmt.Errorf("bench json: mix %s expired %d deadlines; the generous victim deadline must never trip",
				m.Name, m.DeadlineExpired)
		}
		if m.FloodFactor > 0 {
			if m.FloodShed == 0 || m.ShedRateLimited == 0 {
				return fmt.Errorf("bench json: flood mix %s shed nothing (flood_shed=%d rate_limited=%d)",
					m.Name, m.FloodShed, m.ShedRateLimited)
			}
			if m.ShedLaunches == 0 {
				return fmt.Errorf("bench json: flood mix %s never shed a launch; the novel burst must hit the budget", m.Name)
			}
			if m.AdmitP99Ms > 2*baseP99 {
				return fmt.Errorf("bench json: mix %s victim p99 %.2fms exceeds 2× baseline %.2fms — tenant isolation failed",
					m.Name, m.AdmitP99Ms, baseP99)
			}
		}
		if m.SlowAgents && m.HedgedTasks == 0 {
			return fmt.Errorf("bench json: slow mix %s never hedged a straggler", m.Name)
		}
	}
	return nil
}
