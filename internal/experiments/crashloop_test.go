package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// TestCrashloopExperiment runs a reduced sweep — one bug, clean and
// faulty pipeline, clean and very faulty disk — and checks that every
// cell resumed byte-identically, that the faulty-disk cells actually
// exercised recovery, and that the BENCH artifact validates.
func TestCrashloopExperiment(t *testing.T) {
	res, err := Crashloop(Suite("pbzip2"), []float64{0, 0.10}, []float64{0, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(res.Rows))
	}
	sawRecovery := false
	for _, row := range res.Rows {
		if !row.Identical {
			t.Errorf("%s pipe=%g disk=%g: not byte-identical", row.Bug, row.PipelineRate, row.DiskRate)
		}
		if row.Saves == 0 {
			t.Errorf("%s pipe=%g disk=%g: no durable saves", row.Bug, row.PipelineRate, row.DiskRate)
		}
		if row.Resumes != row.Kills {
			t.Errorf("%s pipe=%g disk=%g: %d resumes for %d kills", row.Bug, row.PipelineRate, row.DiskRate, row.Resumes, row.Kills)
		}
		if row.DiskRate > 0 && (row.Quarantined > 0 || row.SaveErrors > 0 || row.Fallbacks > 0 || row.ColdStarts > 0) {
			sawRecovery = true
		}
	}
	if !sawRecovery {
		t.Error("disk rate 0.9 cells never exercised quarantine/fallback/fsync recovery")
	}

	// Determinism: the same sweep reproduces the same rows.
	again, err := Crashloop(Suite("pbzip2"), []float64{0, 0.10}, []float64{0, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Rows {
		if res.Rows[i] != again.Rows[i] {
			t.Errorf("row %d not deterministic:\n%+v\n%+v", i, res.Rows[i], again.Rows[i])
		}
	}

	path := filepath.Join(t.TempDir(), "BENCH_crashloop.json")
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBenchJSON(data); err != nil {
		t.Errorf("artifact failed validation: %v", err)
	}
	if err := ValidateCrashloopJSON([]byte(`{"experiment":"crashloop"}`)); err == nil {
		t.Error("empty crashloop artifact validated")
	}
}
