// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) against the bug suite:
//
//	Table 1  — per-bug slice/sketch sizes, failure recurrences, latency
//	Figs 1/7/8 — the rendered failure sketches
//	Fig 9    — relevance / ordering / overall sketch accuracy
//	Fig 10   — accuracy contribution of slicing, control flow, data flow
//	Fig 11   — client overhead vs. tracked slice size
//	Fig 12   — initial σ vs. accuracy and latency
//	Fig 13   — full-tracing overhead: record/replay vs. Intel PT
//	§5.3     — overhead breakdown (control flow vs. data flow, σ=2)
//	§4       — hardware PT vs. software (PIN-style) control-flow tracing
//
// Absolute numbers differ from the paper (the substrate is a simulator
// with an explicit cost model); the shapes are what must match.
package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/bugs"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/hw/pt"
	"repro/internal/ir"
	"repro/internal/replay"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

// Workers is the fan-out width of the per-bug experiment drivers and
// the fleet width handed to every diagnosis they launch
// (core.Config.Workers). 0 means GOMAXPROCS. gist-bench's -workers
// flag sets it; diagnoses are byte-identical for any value, so the
// knob trades only wall-clock time.
var Workers int

// Telemetry, when set (gist-bench's -trace-out/-metrics-json flags),
// receives phase spans and counters from every diagnosis the experiment
// drivers launch. The perf experiment manages its own per-pass tracer
// and ignores this hook. Results are byte-identical with it nil or set.
var Telemetry *telemetry.Tracer

func experimentWorkers() int {
	if Workers > 0 {
		return Workers
	}
	return runtime.GOMAXPROCS(0)
}

// fanOut evaluates f(0..n-1) on up to `workers` goroutines, results in
// index order — the experiments-side twin of core's fleet pool, used to
// spread suite sweeps across bugs.
func fanOut[T any](n, workers int, f func(int) T) []T {
	out := make([]T, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = f(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = f(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// forEachBug evaluates fn on every bug of the suite concurrently while
// keeping results in suite order. Error semantics match the historical
// serial drivers: the rows of every bug before the first failing one
// (in suite order) are returned together with that bug's error.
func forEachBug[T any](suite []*bugs.Bug, fn func(*bugs.Bug) (T, error)) ([]T, error) {
	type outcome struct {
		row T
		err error
	}
	results := fanOut(len(suite), experimentWorkers(), func(i int) outcome {
		row, err := fn(suite[i])
		return outcome{row, err}
	})
	rows := make([]T, 0, len(suite))
	for _, r := range results {
		if r.err != nil {
			return rows, r.err
		}
		rows = append(rows, r.row)
	}
	return rows, nil
}

// Suite returns the bugs to evaluate: all 11 by default, or the named
// subset.
func Suite(names ...string) []*bugs.Bug {
	if len(names) == 0 {
		return bugs.All()
	}
	var out []*bugs.Bug
	for _, n := range names {
		if b := bugs.ByName(n); b != nil {
			out = append(out, b)
		}
	}
	return out
}

// DeveloperOracle is the automated stand-in for "the developer decides
// the sketch contains the root cause" (§3.2.1): the sketch covers most of
// the ideal sketch's statements and shows a high-precision failure
// predictor.
func DeveloperOracle(b *bugs.Bug) func(*core.Sketch) bool {
	ideal := b.Ideal()
	return func(sk *core.Sketch) bool {
		if len(sk.Predictors) == 0 || sk.Predictors[0].P < 0.75 {
			return false
		}
		lines := make(map[int]bool)
		for _, s := range sk.Steps {
			lines[s.Line] = true
		}
		covered := 0
		for _, ln := range ideal.Lines {
			if lines[ln] {
				covered++
			}
		}
		return covered*4 >= 3*len(ideal.Lines)
	}
}

// Diagnose runs the full Gist pipeline on one bug with the developer
// oracle, the given feature set, and initial window size sigma0 (0 = the
// paper's default of 2).
func Diagnose(b *bugs.Bug, feats core.Features, sigma0 int) (*core.Result, error) {
	cfg := b.GistConfig()
	cfg.Features = feats
	cfg.Sigma0 = sigma0
	cfg.Workers = Workers
	cfg.Telemetry = Telemetry
	cfg.StopWhen = DeveloperOracle(b)
	return core.Run(cfg)
}

// ------------------------------------------------------------- Table 1

// Table1Row is one row of Table 1.
type Table1Row struct {
	Bug      string
	Software string
	Version  string
	BugID    string
	RealLOC  int

	SliceLOC    int
	SliceInstrs int
	IdealLOC    int
	IdealInstrs int
	SketchLOC   int
	SketchInstr int

	Recurrences   int
	TotalRuns     int
	DiscoveryRuns int

	AvgOverheadPct float64
	// AnalysisTime is the offline static analysis time (TICFG + slice +
	// instrumentation plan).
	AnalysisTime time.Duration
	// DiagnosisTime is the wall time of the whole simulated diagnosis.
	DiagnosisTime time.Duration
}

// Table1 regenerates Table 1 for the given bugs (nil = all), fanning
// the per-bug diagnoses out across the experiment worker pool.
func Table1(suite []*bugs.Bug) ([]Table1Row, error) {
	if suite == nil {
		suite = bugs.All()
	}
	return forEachBug(suite, func(b *bugs.Bug) (Table1Row, error) {
		row, err := table1Row(b)
		if err != nil {
			return row, fmt.Errorf("%s: %w", b.Name, err)
		}
		return row, nil
	})
}

func table1Row(b *bugs.Bug) (Table1Row, error) {
	row := Table1Row{
		Bug: b.Name, Software: b.Software, Version: b.Version,
		BugID: b.BugID, RealLOC: b.RealLOC,
	}
	gcfg := b.GistConfig()
	gcfg.Workers = Workers
	gcfg.Telemetry = Telemetry

	// Offline analysis: what the Gist server does before instrumenting.
	// The artifacts are memoized process-wide, so the first diagnosis of
	// a program pays the build and later sweeps measure the cache hit.
	report, disc, err := core.FirstFailure(gcfg)
	if err != nil {
		return row, err
	}
	t0 := time.Now()
	g := analysis.Graph(b.Program())
	sl := analysis.Slice(b.Program(), report.InstrID)
	core.BuildPlan(g, sl.Window(2), core.AllFeatures())
	row.AnalysisTime = time.Since(t0)
	row.SliceLOC = sl.LineCount()
	row.SliceInstrs = sl.InstrCount()

	ideal := b.Ideal()
	row.IdealLOC = len(ideal.Lines)
	row.IdealInstrs = instrsOnLines(b.Program(), ideal.Lines)

	t1 := time.Now()
	gcfg.StopWhen = DeveloperOracle(b)
	res, err := core.RunFromReport(gcfg, report, disc)
	if err != nil {
		return row, err
	}
	row.DiagnosisTime = time.Since(t1)
	row.SketchLOC = len(res.Sketch.Lines())
	row.SketchInstr = len(res.Sketch.InstrSet)
	row.Recurrences = res.FailureRecurrences
	row.TotalRuns = res.TotalRuns
	row.DiscoveryRuns = res.DiscoveryRuns
	row.AvgOverheadPct = res.AvgOverheadPct
	return row, nil
}

func instrsOnLines(p *ir.Program, lines []int) int {
	want := make(map[int]bool)
	for _, ln := range lines {
		want[ln] = true
	}
	n := 0
	for _, in := range p.Instrs {
		if want[in.Pos.Line] {
			n++
		}
	}
	return n
}

// ------------------------------------------------------------- Fig 9

// Fig9Row is one bar group of Fig. 9.
type Fig9Row struct {
	Bug                          string
	Relevance, Ordering, Overall float64
}

// Fig9 regenerates the accuracy figure.
func Fig9(suite []*bugs.Bug) ([]Fig9Row, error) {
	if suite == nil {
		suite = bugs.All()
	}
	return forEachBug(suite, func(b *bugs.Bug) (Fig9Row, error) {
		res, err := Diagnose(b, core.AllFeatures(), 0)
		if err != nil {
			return Fig9Row{}, fmt.Errorf("%s: %w", b.Name, err)
		}
		rel, ord, overall := res.Sketch.Accuracy(b.Ideal())
		return Fig9Row{Bug: b.Name, Relevance: rel, Ordering: ord, Overall: overall}, nil
	})
}

// Fig9Averages returns the mean relevance/ordering/overall accuracy.
func Fig9Averages(rows []Fig9Row) (rel, ord, overall float64) {
	var rs, os, as []float64
	for _, r := range rows {
		rs = append(rs, r.Relevance)
		os = append(os, r.Ordering)
		as = append(as, r.Overall)
	}
	return stats.Mean(rs), stats.Mean(os), stats.Mean(as)
}

// ------------------------------------------------------------- Fig 10

// Fig10Row is one bar group of Fig. 10: overall accuracy as tracking
// techniques are enabled cumulatively.
type Fig10Row struct {
	Bug        string
	StaticOnly float64
	PlusCF     float64
	PlusDF     float64
}

// Fig10 regenerates the technique-contribution figure.
func Fig10(suite []*bugs.Bug) ([]Fig10Row, error) {
	if suite == nil {
		suite = bugs.All()
	}
	confs := []core.Features{
		{Static: true},
		{Static: true, ControlFlow: true},
		{Static: true, ControlFlow: true, DataFlow: true},
	}
	return forEachBug(suite, func(b *bugs.Bug) (Fig10Row, error) {
		var acc [3]float64
		for i, f := range confs {
			res, err := Diagnose(b, f, 0)
			if err != nil {
				// Without data flow some bugs cannot converge to the
				// oracle; use whatever sketch the run ended with.
				if res == nil || res.Sketch == nil {
					return Fig10Row{}, fmt.Errorf("%s (features %+v): %w", b.Name, f, err)
				}
			}
			_, _, overall := res.Sketch.Accuracy(b.Ideal())
			acc[i] = overall
		}
		return Fig10Row{Bug: b.Name, StaticOnly: acc[0], PlusCF: acc[1], PlusDF: acc[2]}, nil
	})
}

// ------------------------------------------------------------- Fig 11

// Fig11Point is one x-position of Fig. 11: mean client overhead across
// the suite when tracking a slice window of the given size.
type Fig11Point struct {
	SliceSize      int
	AvgOverheadPct float64
	PerBug         map[string]float64
}

// Fig11 regenerates overhead-vs-tracked-slice-size for the given window
// sizes (in source statements).
func Fig11(suite []*bugs.Bug, sizes []int, runsPerPoint int) ([]Fig11Point, error) {
	if suite == nil {
		suite = bugs.All()
	}
	if len(sizes) == 0 {
		sizes = []int{2, 4, 8, 12, 16, 22, 28, 32}
	}
	if runsPerPoint == 0 {
		runsPerPoint = 12
	}
	var points []Fig11Point
	for _, size := range sizes {
		pt := Fig11Point{SliceSize: size, PerBug: make(map[string]float64)}
		ovs, err := forEachBug(suite, func(b *bugs.Bug) (float64, error) {
			ov, err := windowOverhead(b, size, runsPerPoint)
			if err != nil {
				return 0, fmt.Errorf("%s size %d: %w", b.Name, size, err)
			}
			return ov, nil
		})
		if err != nil {
			return points, err
		}
		for i, b := range suite {
			pt.PerBug[b.Name] = ovs[i]
		}
		pt.AvgOverheadPct = stats.Mean(ovs)
		points = append(points, pt)
	}
	return points, nil
}

// windowOverhead measures mean client overhead when tracking the first
// `size` statements of the bug's slice.
func windowOverhead(b *bugs.Bug, size, runs int) (float64, error) {
	gcfg := b.GistConfig()
	gcfg.Workers = Workers
	gcfg.Telemetry = Telemetry
	report, _, err := core.FirstFailure(gcfg)
	if err != nil {
		return 0, err
	}
	g := analysis.Graph(b.Program())
	sl := analysis.Slice(b.Program(), report.InstrID)
	plan := core.BuildPlan(g, sl.Window(size), core.AllFeatures())
	var ovs []float64
	pm := b.PreemptMean
	if pm == 0 {
		pm = 3
	}
	for seed := int64(0); seed < int64(runs); seed++ {
		spec := core.RunSpec{
			EndpointID:  int(seed),
			Seed:        10_000 + seed,
			Workload:    workloadFor(b, int(seed)),
			PreemptMean: pm,
			MaxSteps:    300_000,
		}
		rt := core.RunInstrumented(plan, spec)
		ovs = append(ovs, rt.Meter.OverheadPct())
	}
	return stats.Mean(ovs), nil
}

func workloadFor(b *bugs.Bug, k int) vm.Workload {
	if len(b.Workloads) == 0 {
		return vm.Workload{}
	}
	return b.Workloads[k%len(b.Workloads)]
}

// ------------------------------------------------------------- Fig 12

// Fig12Row is one x-position of Fig. 12: starting window size σ0 against
// resulting accuracy and diagnosis latency (failure recurrences).
type Fig12Row struct {
	Sigma0      int
	AvgAccuracy float64
	AvgLatency  float64
}

// Fig12 regenerates the σ tradeoff.
func Fig12(suite []*bugs.Bug, sigmas []int) ([]Fig12Row, error) {
	if suite == nil {
		suite = bugs.All()
	}
	if len(sigmas) == 0 {
		sigmas = []int{2, 4, 8, 16, 23, 32}
	}
	var rows []Fig12Row
	for _, s0 := range sigmas {
		type cell struct{ acc, lat float64 }
		cells, err := forEachBug(suite, func(b *bugs.Bug) (cell, error) {
			res, err := Diagnose(b, core.AllFeatures(), s0)
			if err != nil {
				return cell{}, fmt.Errorf("%s sigma0=%d: %w", b.Name, s0, err)
			}
			_, _, overall := res.Sketch.Accuracy(b.Ideal())
			return cell{acc: overall, lat: float64(res.FailureRecurrences)}, nil
		})
		if err != nil {
			return rows, err
		}
		var accs, lats []float64
		for _, c := range cells {
			accs = append(accs, c.acc)
			lats = append(lats, c.lat)
		}
		rows = append(rows, Fig12Row{Sigma0: s0, AvgAccuracy: stats.Mean(accs), AvgLatency: stats.Mean(lats)})
	}
	return rows, nil
}

// ------------------------------------------------------------- Fig 13

// Fig13Row is one bar pair of Fig. 13: full-program tracing overhead of
// software record/replay vs. hardware Intel PT.
type Fig13Row struct {
	Bug          string
	IntelPTPct   float64
	MozillaRRPct float64
	// Ratio is rr/PT (the paper reports up to "orders of magnitude").
	Ratio float64
}

// Fig13 regenerates the full-tracing comparison.
func Fig13(suite []*bugs.Bug, runsPerBug int) ([]Fig13Row, error) {
	if suite == nil {
		suite = bugs.All()
	}
	if runsPerBug == 0 {
		runsPerBug = 10
	}
	return forEachBug(suite, func(b *bugs.Bug) (Fig13Row, error) {
		ptPct := fullPTOverhead(b, runsPerBug, pt.Hardware)
		rrPct := rrOverhead(b, runsPerBug)
		row := Fig13Row{Bug: b.Name, IntelPTPct: ptPct, MozillaRRPct: rrPct}
		if ptPct > 0 {
			row.Ratio = rrPct / ptPct
		}
		return row, nil
	})
}

// SWPTRow is the §4 comparison: hardware PT vs. a software (PIN-style)
// control-flow tracer.
type SWPTRow struct {
	Bug              string
	HardwarePct      float64
	SoftwarePct      float64
	SlowdownVsHWOnce float64
}

// SoftwarePT regenerates the §4 hardware-vs-software tracing comparison.
func SoftwarePT(suite []*bugs.Bug, runsPerBug int) []SWPTRow {
	if suite == nil {
		suite = bugs.All()
	}
	if runsPerBug == 0 {
		runsPerBug = 8
	}
	rows, _ := forEachBug(suite, func(b *bugs.Bug) (SWPTRow, error) {
		hw := fullPTOverhead(b, runsPerBug, pt.Hardware)
		sw := fullPTOverhead(b, runsPerBug, pt.Software)
		row := SWPTRow{Bug: b.Name, HardwarePct: hw, SoftwarePct: sw}
		if hw > 0 {
			row.SlowdownVsHWOnce = sw / hw
		}
		return row, nil
	})
	return rows
}

// fullPTOverhead measures full-program control-flow tracing: every thread
// traced from its first instruction to its last.
func fullPTOverhead(b *bugs.Bug, runs int, mode pt.Mode) float64 {
	prog := b.Program()
	pm := b.PreemptMean
	if pm == 0 {
		pm = 3
	}
	var ovs []float64
	for seed := int64(0); seed < int64(runs); seed++ {
		meter := &cost.Meter{}
		tr := pt.NewTracer(pt.Config{Mode: mode}, meter)
		hooks := vm.Hooks{
			OnStep: func(t *vm.Thread, in *ir.Instr, clock int64) {
				meter.AddInstr(1)
				if !tr.Enabled(t.ID) {
					tr.Enable(t.ID, in.ID)
				}
				tr.InstrRetired(t.ID)
			},
			OnBranch: func(t *vm.Thread, in *ir.Instr, taken bool, clock int64) {
				tr.Branch(t.ID, in.ID, taken)
			},
			OnIndirect: func(t *vm.Thread, in *ir.Instr, target *ir.Instr, clock int64) {
				if in.Op == ir.OpCall || in.Op == ir.OpRet {
					tr.TIP(t.ID, in.ID, target.ID)
				}
			},
		}
		vm.Run(prog, vm.Config{
			Seed: 20_000 + seed, PreemptMean: pm, MaxSteps: 300_000,
			Workload: workloadFor(b, int(seed)), Hooks: hooks,
		})
		ovs = append(ovs, meter.OverheadPct())
	}
	return stats.Mean(ovs)
}

// rrOverhead measures full-program record/replay recording overhead.
func rrOverhead(b *bugs.Bug, runs int) float64 {
	prog := b.Program()
	pm := b.PreemptMean
	if pm == 0 {
		pm = 3
	}
	var ovs []float64
	for seed := int64(0); seed < int64(runs); seed++ {
		ovs = append(ovs, replay.OverheadPct(prog, vm.Config{
			Seed: 20_000 + seed, PreemptMean: pm, MaxSteps: 300_000,
			Workload: workloadFor(b, int(seed)),
		}))
	}
	return stats.Mean(ovs)
}

// ------------------------------------------------------------- §5.3

// BreakdownRow decomposes Gist's σ=2 overhead into its control-flow and
// data-flow components (§5.3's 2.01–3.43% and 0.87–1.04% ranges).
type BreakdownRow struct {
	Bug       string
	CFOnlyPct float64
	DFOnlyPct float64
	FullPct   float64
}

// Breakdown regenerates the §5.3 overhead decomposition.
func Breakdown(suite []*bugs.Bug, runsPerBug int) ([]BreakdownRow, error) {
	if suite == nil {
		suite = bugs.All()
	}
	if runsPerBug == 0 {
		runsPerBug = 12
	}
	return forEachBug(suite, func(b *bugs.Bug) (BreakdownRow, error) {
		row := BreakdownRow{Bug: b.Name}
		var err error
		for _, c := range []struct {
			feats core.Features
			dst   *float64
		}{
			{core.Features{Static: true, ControlFlow: true}, &row.CFOnlyPct},
			{core.Features{Static: true, DataFlow: true}, &row.DFOnlyPct},
			{core.AllFeatures(), &row.FullPct},
		} {
			*c.dst, err = featureOverhead(b, c.feats, runsPerBug)
			if err != nil {
				return row, fmt.Errorf("%s: %w", b.Name, err)
			}
		}
		return row, nil
	})
}

func featureOverhead(b *bugs.Bug, feats core.Features, runs int) (float64, error) {
	gcfg := b.GistConfig()
	gcfg.Workers = Workers
	gcfg.Telemetry = Telemetry
	report, _, err := core.FirstFailure(gcfg)
	if err != nil {
		return 0, err
	}
	g := analysis.Graph(b.Program())
	sl := analysis.Slice(b.Program(), report.InstrID)
	plan := core.BuildPlan(g, sl.Window(2), feats)
	pm := b.PreemptMean
	if pm == 0 {
		pm = 3
	}
	var ovs []float64
	for seed := int64(0); seed < int64(runs); seed++ {
		rt := core.RunInstrumented(plan, core.RunSpec{
			EndpointID: int(seed), Seed: 30_000 + seed,
			Workload: workloadFor(b, int(seed)), PreemptMean: pm, MaxSteps: 300_000,
		})
		ovs = append(ovs, rt.Meter.OverheadPct())
	}
	return stats.Mean(ovs), nil
}

// ------------------------------------------------------------- §6

// ExtPTRow compares the shipping design (watchpoint data flow) with the
// §6 hardware extension (extended PT carrying data): overhead, accuracy,
// and latency per bug.
type ExtPTRow struct {
	Bug         string
	WPOverhead  float64
	WPAccuracy  float64
	ExtOverhead float64
	ExtAccuracy float64
}

// ExtendedPT regenerates the §6 what-if comparison.
func ExtendedPT(suite []*bugs.Bug) ([]ExtPTRow, error) {
	if suite == nil {
		suite = bugs.All()
	}
	return forEachBug(suite, func(b *bugs.Bug) (ExtPTRow, error) {
		wp, err := Diagnose(b, core.AllFeatures(), 0)
		if err != nil {
			return ExtPTRow{}, fmt.Errorf("%s (watchpoints): %w", b.Name, err)
		}
		ext, err := Diagnose(b, core.Features{Static: true, ControlFlow: true, DataFlow: true, ExtendedPT: true}, 0)
		if err != nil {
			return ExtPTRow{}, fmt.Errorf("%s (extended PT): %w", b.Name, err)
		}
		_, _, wpAcc := wp.Sketch.Accuracy(b.Ideal())
		_, _, extAcc := ext.Sketch.Accuracy(b.Ideal())
		return ExtPTRow{
			Bug:        b.Name,
			WPOverhead: wp.AvgOverheadPct, WPAccuracy: wpAcc,
			ExtOverhead: ext.AvgOverheadPct, ExtAccuracy: extAcc,
		}, nil
	})
}

// ------------------------------------------------------------- sketches

// SketchFigures renders the three failure sketches the paper prints
// (Fig. 1 pbzip2, Fig. 7 curl, Fig. 8 apache-3).
func SketchFigures() (map[string]string, error) {
	out := make(map[string]string)
	for _, name := range []string{"pbzip2", "curl", "apache-3"} {
		b := bugs.ByName(name)
		res, err := Diagnose(b, core.AllFeatures(), 0)
		if err != nil {
			return out, fmt.Errorf("%s: %w", name, err)
		}
		out[name] = res.Sketch.Render()
	}
	return out, nil
}
