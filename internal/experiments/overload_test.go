package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestOverloadExperiment runs the full mix sweep at reduced scale — two
// victims, one flooding tenant at up to 10× the rate limit, slow agents
// on the slow mixes — and checks the shed/hedge counters moved, every
// sketch came back byte-identical, and the BENCH artifact validates.
func TestOverloadExperiment(t *testing.T) {
	res, err := Overload(OverloadOptions{
		Victims:         2,
		AgentsPerTenant: 2,
		FoldsPerVictim:  8,
		NovelBurst:      6,
		SlowMeanMs:      200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Fatalf("diagnoses diverged from batch: %+v", res)
	}
	if len(res.Mixes) != len(overloadMixes) {
		t.Fatalf("got %d mixes, want %d", len(res.Mixes), len(overloadMixes))
	}
	for _, m := range res.Mixes {
		if m.VictimAdmitted < res.Victims {
			t.Errorf("mix %s: only %d victim submits admitted", m.Name, m.VictimAdmitted)
		}
		if m.MaxQueuedLaunches > res.LaunchBudget {
			t.Errorf("mix %s: launch queue peaked at %d over budget %d",
				m.Name, m.MaxQueuedLaunches, res.LaunchBudget)
		}
		if m.DeadlineExpired != 0 {
			t.Errorf("mix %s: %d deadlines expired under a 120s budget", m.Name, m.DeadlineExpired)
		}
		if m.FloodFactor > 0 {
			if m.FloodShed == 0 || m.ShedRateLimited == 0 {
				t.Errorf("mix %s: flood not shed (client=%d server=%d)",
					m.Name, m.FloodShed, m.ShedRateLimited)
			}
			if m.ShedLaunches == 0 {
				t.Errorf("mix %s: novel burst never hit the launch budget", m.Name)
			}
		} else if m.FloodShed != 0 || m.FloodOffered != 0 {
			t.Errorf("mix %s: flood traffic recorded without a flooder: %+v", m.Name, m)
		}
		if m.SlowAgents && m.HedgedTasks == 0 {
			t.Errorf("mix %s: slow agents never triggered a hedge", m.Name)
		}
	}

	path := filepath.Join(t.TempDir(), "BENCH_overload.json")
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBenchJSON(data); err != nil {
		t.Errorf("artifact failed validation: %v", err)
	}
}

// TestValidateOverloadJSON exercises the validator's rejection paths on
// mutations of a minimal valid artifact.
func TestValidateOverloadJSON(t *testing.T) {
	valid := func() *OverloadResult {
		mix := func(name string, flood float64, slow bool) OverloadMix {
			m := OverloadMix{
				Name: name, FloodFactor: flood, SlowAgents: slow,
				VictimReports: 10, VictimAdmitted: 10, GoodputPerSec: 12,
				AdmitP50Ms: 0.3, AdmitP95Ms: 0.8, AdmitP99Ms: 1.2,
				E2EP50Ms: 900, E2EMaxMs: 1500,
				HeapAllocMB: 40, MaxQueuedLaunches: 1,
				Identical: true, Sketches: 2,
			}
			if flood > 0 {
				m.FloodOffered, m.FloodShed, m.FloodShedRate = 200, 180, 0.9
				m.ShedRateLimited, m.ShedLaunches = 150, 6
			}
			if slow {
				m.HedgedTasks, m.HedgedResults = 4, 3
			}
			return m
		}
		return &OverloadResult{
			Experiment: "overload", Bug: "deadlock", Victims: 2, GoMaxProcs: 4,
			TenantRPS: 50, MaxInflight: 2, LaunchBudget: 1, HedgeAfterMs: 50,
			Identical: true,
			Mixes: []OverloadMix{
				mix("baseline", 0, false),
				mix("flood-4x", 4, false),
				mix("flood-10x", 10, false),
				mix("slow", 0, true),
				mix("flood-slow-10x", 10, true),
			},
		}
	}
	check := func(name string, mutate func(*OverloadResult), wantErr bool) {
		t.Helper()
		r := valid()
		mutate(r)
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		err = ValidateOverloadJSON(data)
		if wantErr && err == nil {
			t.Errorf("%s: validated, want rejection", name)
		}
		if !wantErr && err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}

	check("valid", func(r *OverloadResult) {}, false)
	check("not identical", func(r *OverloadResult) { r.Identical = false }, true)
	check("mix not identical", func(r *OverloadResult) { r.Mixes[2].Identical = false }, true)
	check("missing acceptance mix", func(r *OverloadResult) { r.Mixes = r.Mixes[:4] }, true)
	check("no knobs recorded", func(r *OverloadResult) { r.TenantRPS = 0 }, true)
	check("flood mix shed nothing", func(r *OverloadResult) {
		r.Mixes[2].FloodShed = 0
	}, true)
	check("flood mix no rate-limit sheds", func(r *OverloadResult) {
		r.Mixes[2].ShedRateLimited = 0
	}, true)
	check("flood mix no launch sheds", func(r *OverloadResult) {
		r.Mixes[2].ShedLaunches = 0
	}, true)
	check("slow mix never hedged", func(r *OverloadResult) {
		r.Mixes[3].HedgedTasks = 0
	}, true)
	check("launch queue over budget", func(r *OverloadResult) {
		r.Mixes[1].MaxQueuedLaunches = 2
	}, true)
	check("isolation violated", func(r *OverloadResult) {
		r.Mixes[2].AdmitP99Ms = 100 // 2× the 5ms-floored baseline is 10ms
	}, true)
	check("deadline tripped", func(r *OverloadResult) {
		r.Mixes[4].DeadlineExpired = 1
	}, true)
	check("non-monotone percentiles", func(r *OverloadResult) {
		r.Mixes[0].AdmitP95Ms = 5
	}, true)
	check("no goodput", func(r *OverloadResult) {
		r.Mixes[0].VictimAdmitted, r.Mixes[0].GoodputPerSec = 0, 0
	}, true)
	check("unbounded heap", func(r *OverloadResult) {
		r.Mixes[0].HeapAllocMB = 4096
	}, true)
	check("too few sketches", func(r *OverloadResult) {
		r.Mixes[0].Sketches = 1
	}, true)
	check("wrong experiment", func(r *OverloadResult) {
		r.Experiment = "perf"
	}, true)
}
