package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bugs"
	"repro/internal/core"
)

// TestEngineDifferential is the end-to-end engine equivalence contract:
// a full diagnosis on the bytecode engine must be byte-identical to the
// serial interpreter reference — sketch render, predictor rankings,
// slice contents, per-iteration stats, FleetHealth — on every bug in
// the suite, with a reliable fleet and under 10% composite fault
// injection, at fleet widths 1 and 4. The unit-level differential suite
// (internal/vm/bytecode) pins raw outcomes and hook streams; this test
// pins the whole pipeline built on top of them, including PT decode,
// watchpoint logs, and refinement. CI runs it under -race.
func TestEngineDifferential(t *testing.T) {
	for _, b := range bugs.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			for _, rate := range []float64{0, 0.10} {
				ref := engineFingerprint(t, b.Name, rate, 1, core.EngineInterp, nil)
				for _, workers := range []int{1, 4} {
					got := engineFingerprint(t, b.Name, rate, workers, core.EngineBytecode, nil)
					if got != ref {
						t.Fatalf("rate=%.2f workers=%d: bytecode engine diverged from interpreter:\n--- interp (serial) ---\n%s\n--- bytecode ---\n%s",
							rate, workers, ref, got)
					}
				}
			}
		})
	}
}

// TestParseEngine pins the flag grammar: the two engine spellings parse,
// anything else is rejected (cmd/gist exits 2 on that error).
func TestParseEngine(t *testing.T) {
	for s, want := range map[string]core.Engine{
		"bytecode":    core.EngineBytecode,
		"interp":      core.EngineInterp,
		"interpreter": core.EngineInterp,
	} {
		got, err := core.ParseEngine(s)
		if err != nil || got != want {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	for _, s := range []string{"", "treewalk", "Bytecode", "fast"} {
		if _, err := core.ParseEngine(s); err == nil {
			t.Errorf("ParseEngine(%q) accepted, want error", s)
		}
	}
	if core.EngineBytecode.String() != "bytecode" || core.EngineInterp.String() != "interp" {
		t.Errorf("Engine.String round-trip broken: %q %q",
			core.EngineBytecode.String(), core.EngineInterp.String())
	}
	var zero core.Engine
	if zero != core.EngineBytecode {
		t.Error("zero-value Engine is not the bytecode engine")
	}
}

// TestVMBenchJSONRoundTrip runs a one-bug vm pass and validates the
// JSON it writes — the same check CI's vm-bench smoke applies.
func TestVMBenchJSONRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-driven; skipped in -short")
	}
	res, err := VMPerf(Suite("pbzip2"))
	if err != nil {
		t.Fatalf("VMPerf: %v", err)
	}
	data, err := vmJSONBytes(t, res)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBenchJSON(data); err != nil {
		t.Fatalf("ValidateBenchJSON: %v", err)
	}
	row := res.Rows[0]
	if row.Speedup < 2 {
		t.Errorf("bytecode speedup %.2fx on pbzip2; expected comfortably above 2x even on noisy CI", row.Speedup)
	}
	if row.BytecodeAllocsOp >= row.InterpAllocsOp/10 {
		t.Errorf("bytecode allocs/op %d vs interp %d; the warm path should allocate orders of magnitude less",
			row.BytecodeAllocsOp, row.InterpAllocsOp)
	}
}

// TestValidateVMJSONRejects covers the malformed-artifact paths.
func TestValidateVMJSONRejects(t *testing.T) {
	good := `{"experiment":"vm","gomaxprocs":1,"rows":[{"bug":"pbzip2","interp_ns_op":1000,"bytecode_ns_op":100,"interp_allocs_op":1000,"bytecode_allocs_op":3,"speedup":10}]}`
	if err := ValidateBenchJSON([]byte(good)); err != nil {
		t.Fatalf("well-formed vm json rejected: %v", err)
	}
	cases := map[string]string{
		"not json":         `{`,
		"wrong experiment": `{"experiment":"perf","rows":[]}`,
		"no rows":          `{"experiment":"vm","gomaxprocs":1,"rows":[]}`,
		"no gomaxprocs":    `{"experiment":"vm","rows":[{"bug":"x","interp_ns_op":10,"bytecode_ns_op":1,"interp_allocs_op":10,"bytecode_allocs_op":1,"speedup":10}]}`,
		"unnamed row":      `{"experiment":"vm","gomaxprocs":1,"rows":[{"interp_ns_op":10,"bytecode_ns_op":1,"interp_allocs_op":10,"bytecode_allocs_op":1,"speedup":10}]}`,
		"zero timing":      `{"experiment":"vm","gomaxprocs":1,"rows":[{"bug":"x","interp_ns_op":0,"bytecode_ns_op":1,"interp_allocs_op":10,"bytecode_allocs_op":1,"speedup":10}]}`,
		"no speedup":       `{"experiment":"vm","gomaxprocs":1,"rows":[{"bug":"x","interp_ns_op":10,"bytecode_ns_op":20,"interp_allocs_op":10,"bytecode_allocs_op":1,"speedup":0.5}]}`,
		"alloc regression": `{"experiment":"vm","gomaxprocs":1,"rows":[{"bug":"x","interp_ns_op":10,"bytecode_ns_op":1,"interp_allocs_op":5,"bytecode_allocs_op":5,"speedup":10}]}`,
	}
	for name, data := range cases {
		if err := ValidateVMJSON([]byte(data)); err == nil {
			t.Errorf("%s: validated, want error", name)
		}
	}
}

func vmJSONBytes(t *testing.T, res *VMResult) ([]byte, error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH_vm.json")
	if err := res.WriteJSON(path); err != nil {
		return nil, fmt.Errorf("WriteJSON: %w", err)
	}
	return os.ReadFile(path)
}
