package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/analysis"
	"repro/internal/bugs"
	"repro/internal/core"
)

// The perf experiment measures the two parallel layers this repo adds on
// top of the paper's pipeline: the fleet worker pool inside one
// diagnosis (core.Config.Workers) and the per-bug fan-out across a
// suite sweep (fanOut). Both layers are byte-identical for any worker
// count, so this experiment reports wall-clock only; correctness is the
// determinism test's job.

// PerfBugRow is one bug's scaling series. Slices are aligned with
// PerfResult.Workers: WallMS[i] is the diagnosis wall time at
// Workers[i] fleet workers.
type PerfBugRow struct {
	Bug        string    `json:"bug"`
	TotalRuns  int       `json:"total_runs"`
	WallMS     []float64 `json:"wall_ms"`
	RunsPerSec []float64 `json:"runs_per_sec"`
	// Speedup is WallMS[0] / WallMS[i]; the first entry of Workers is
	// always 1, so Speedup[i] is vs. the serial fleet.
	Speedup []float64 `json:"speedup"`
}

// PerfResult is the full perf experiment, serialized to
// BENCH_fleet.json by -json.
type PerfResult struct {
	Experiment string `json:"experiment"`
	// GoMaxProcs is runtime.GOMAXPROCS at measurement time. Speedups
	// are bounded by it: on a 1-CPU host every worker count runs at
	// roughly serial speed and Speedup stays near 1.
	GoMaxProcs int   `json:"gomaxprocs"`
	Workers    []int `json:"workers"`
	// Bugs scales the fleet pool inside one diagnosis (bugs measured
	// serially, Config.Workers = w).
	Bugs []PerfBugRow `json:"bugs"`
	// Sweep* scale the per-bug fan-out across the whole suite (fan-out
	// width w, each diagnosis with a serial fleet).
	SweepWallMS  []float64 `json:"sweep_wall_ms"`
	SweepSpeedup []float64 `json:"sweep_speedup"`
	// Cache is the analysis-cache counter snapshot after each worker
	// pass (the cache is reset before each pass, so hits within a pass
	// are hits the memoization earned, not leftovers).
	Cache []analysis.Stats `json:"analysis_cache"`
}

func perfDiagnose(b *bugs.Bug, fleetWorkers int) (*core.Result, error) {
	cfg := b.GistConfig()
	cfg.Features = core.AllFeatures()
	cfg.Workers = fleetWorkers
	cfg.StopWhen = DeveloperOracle(b)
	return core.Run(cfg)
}

// Perf runs the scaling experiment over the given worker counts
// (nil = {1, 2, 4, 8}). The first measured count is always 1, the
// serial baseline every speedup is relative to.
func Perf(suite []*bugs.Bug, workersList []int) (*PerfResult, error) {
	if suite == nil {
		suite = bugs.All()
	}
	if len(workersList) == 0 {
		workersList = []int{1, 2, 4, 8}
	}
	if workersList[0] != 1 {
		workersList = append([]int{1}, workersList...)
	}

	res := &PerfResult{
		Experiment: "perf",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    workersList,
	}
	res.Bugs = make([]PerfBugRow, len(suite))
	for i, b := range suite {
		res.Bugs[i].Bug = b.Name
	}

	for _, w := range workersList {
		// Cold cache per pass so every pass pays (and then amortizes)
		// the same static-analysis work.
		analysis.Reset()

		// Layer 1: fleet pool inside one diagnosis.
		for i, b := range suite {
			t0 := time.Now()
			r, err := perfDiagnose(b, w)
			if err != nil {
				return res, fmt.Errorf("%s workers=%d: %w", b.Name, w, err)
			}
			wall := time.Since(t0)
			ms := float64(wall.Microseconds()) / 1e3
			row := &res.Bugs[i]
			row.TotalRuns = r.TotalRuns + r.DiscoveryRuns
			row.WallMS = append(row.WallMS, ms)
			row.RunsPerSec = append(row.RunsPerSec, float64(row.TotalRuns)/wall.Seconds())
			row.Speedup = append(row.Speedup, row.WallMS[0]/ms)
		}

		// Layer 2: per-bug fan-out across the sweep, serial fleets.
		t0 := time.Now()
		outs := fanOut(len(suite), w, func(i int) error {
			_, err := perfDiagnose(suite[i], 1)
			return err
		})
		for i, err := range outs {
			if err != nil {
				return res, fmt.Errorf("sweep %s workers=%d: %w", suite[i].Name, w, err)
			}
		}
		ms := float64(time.Since(t0).Microseconds()) / 1e3
		res.SweepWallMS = append(res.SweepWallMS, ms)
		res.SweepSpeedup = append(res.SweepSpeedup, res.SweepWallMS[0]/ms)
		res.Cache = append(res.Cache, analysis.Snapshot())
	}
	return res, nil
}

// WriteJSON serializes the result (indented, trailing newline) to path.
func (r *PerfResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
