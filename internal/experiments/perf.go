package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/analysis"
	"repro/internal/bugs"
	"repro/internal/core"
	"repro/internal/hw/pt"
	"repro/internal/hw/watch"
	"repro/internal/telemetry"
)

// The perf experiment measures the two parallel layers this repo adds on
// top of the paper's pipeline: the fleet worker pool inside one
// diagnosis (core.Config.Workers) and the per-bug fan-out across a
// suite sweep (fanOut). Both layers are byte-identical for any worker
// count, so this experiment reports wall-clock only; correctness is the
// determinism test's job.
//
// Each worker pass additionally runs under its own telemetry tracer and
// reports where the time went (§5.3's per-phase accounting, applied to
// the reproduction itself): slice/decode/watch/rank phase totals plus
// the cache and fault counters for that pass.

// PerfBugRow is one bug's scaling series. Slices are aligned with
// PerfResult.Workers: WallMS[i] is the diagnosis wall time at
// Workers[i] fleet workers.
type PerfBugRow struct {
	Bug        string    `json:"bug"`
	TotalRuns  int       `json:"total_runs"`
	WallMS     []float64 `json:"wall_ms"`
	RunsPerSec []float64 `json:"runs_per_sec"`
	// Speedup is WallMS[0] / WallMS[i]; the first entry of Workers is
	// always 1, so Speedup[i] is vs. the serial fleet.
	Speedup []float64 `json:"speedup"`
}

// PhaseRow is one pipeline phase's aggregate over a worker pass.
type PhaseRow struct {
	Phase   string  `json:"phase"`
	Count   int64   `json:"count"`
	TotalMS float64 `json:"total_ms"`
	MaxMS   float64 `json:"max_ms"`
}

// PerfResult is the full perf experiment, serialized to
// BENCH_fleet.json by -json.
type PerfResult struct {
	Experiment string `json:"experiment"`
	// GoMaxProcs is runtime.GOMAXPROCS at measurement time. Speedups
	// are bounded by it: on a 1-CPU host every worker count runs at
	// roughly serial speed and Speedup stays near 1.
	GoMaxProcs int   `json:"gomaxprocs"`
	Workers    []int `json:"workers"`
	// Bugs scales the fleet pool inside one diagnosis (bugs measured
	// serially, Config.Workers = w).
	Bugs []PerfBugRow `json:"bugs"`
	// Sweep* scale the per-bug fan-out across the whole suite (fan-out
	// width w, each diagnosis with a serial fleet).
	SweepWallMS  []float64 `json:"sweep_wall_ms"`
	SweepSpeedup []float64 `json:"sweep_speedup"`
	// Cache is the analysis-cache counter snapshot after each worker
	// pass (the cache is reset before each pass, so hits within a pass
	// are hits the memoization earned, not leftovers).
	Cache []analysis.Stats `json:"analysis_cache"`
	// Phases is the per-phase timing breakdown of each worker pass
	// (aligned with Workers): how long the pass spent in slicing, PT
	// decode, watchpoint collection, predictor ranking, and the other
	// pipeline phases, aggregated across every diagnosis of the pass.
	Phases [][]PhaseRow `json:"phase_breakdown"`
	// Counters is each pass's counter inventory (aligned with
	// Workers): the fleet.* FleetHealth mirror, faults.* injection
	// counts, cache.* analysis-cache counters, and the pt.*/watch.*
	// hardware-layer counters.
	Counters []map[string]int64 `json:"counters"`
}

// RequiredPhases are the phase names the BENCH JSON must always carry;
// CI's smoke step refuses a BENCH file without them.
var RequiredPhases = []string{
	telemetry.PhaseSlice,
	telemetry.PhaseDecode,
	telemetry.PhaseWatch,
	telemetry.PhaseRank,
}

func perfDiagnose(b *bugs.Bug, fleetWorkers int, tel *telemetry.Tracer) (*core.Result, error) {
	cfg := b.GistConfig()
	cfg.Features = core.AllFeatures()
	cfg.Workers = fleetWorkers
	cfg.Telemetry = tel
	cfg.StopWhen = DeveloperOracle(b)
	return core.Run(cfg)
}

// Perf runs the scaling experiment over the given worker counts
// (nil = {1, 2, 4, 8}). The first measured count is always 1, the
// serial baseline every speedup is relative to.
func Perf(suite []*bugs.Bug, workersList []int) (*PerfResult, error) {
	if suite == nil {
		suite = bugs.All()
	}
	if len(workersList) == 0 {
		workersList = []int{1, 2, 4, 8}
	}
	if workersList[0] != 1 {
		workersList = append([]int{1}, workersList...)
	}

	res := &PerfResult{
		Experiment: "perf",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    workersList,
	}
	res.Bugs = make([]PerfBugRow, len(suite))
	for i, b := range suite {
		res.Bugs[i].Bug = b.Name
	}

	for _, w := range workersList {
		// Cold cache and fresh counters per pass so every pass pays
		// (and then amortizes) the same static-analysis work and
		// reports only its own activity.
		analysis.Reset()
		pt.ResetMetrics()
		watch.ResetMetrics()
		tel := telemetry.New()
		tel.SetGauge("fleet.workers", int64(w))

		// Layer 1: fleet pool inside one diagnosis.
		for i, b := range suite {
			t0 := time.Now()
			r, err := perfDiagnose(b, w, tel)
			if err != nil {
				return res, fmt.Errorf("%s workers=%d: %w", b.Name, w, err)
			}
			wall := time.Since(t0)
			ms := float64(wall.Microseconds()) / 1e3
			row := &res.Bugs[i]
			row.TotalRuns = r.TotalRuns + r.DiscoveryRuns
			row.WallMS = append(row.WallMS, ms)
			row.RunsPerSec = append(row.RunsPerSec, float64(row.TotalRuns)/wall.Seconds())
			row.Speedup = append(row.Speedup, row.WallMS[0]/ms)
		}

		// Layer 2: per-bug fan-out across the sweep, serial fleets.
		t0 := time.Now()
		outs := fanOut(len(suite), w, func(i int) error {
			_, err := perfDiagnose(suite[i], 1, tel)
			return err
		})
		for i, err := range outs {
			if err != nil {
				return res, fmt.Errorf("sweep %s workers=%d: %w", suite[i].Name, w, err)
			}
		}
		ms := float64(time.Since(t0).Microseconds()) / 1e3
		res.SweepWallMS = append(res.SweepWallMS, ms)
		res.SweepSpeedup = append(res.SweepSpeedup, res.SweepWallMS[0]/ms)
		res.Cache = append(res.Cache, analysis.Snapshot())
		res.Phases = append(res.Phases, phaseRows(tel.Snapshot()))
		res.Counters = append(res.Counters, passCounters(tel.Snapshot()))
	}
	return res, nil
}

// phaseRows flattens a snapshot's phase aggregates into sorted rows,
// materializing the required phases even when a pass recorded no span
// for one (so the BENCH schema is stable for downstream tooling).
func phaseRows(snap telemetry.Snapshot) []PhaseRow {
	for _, name := range RequiredPhases {
		if _, ok := snap.Phases[name]; !ok {
			snap.Phases[name] = telemetry.PhaseStat{}
		}
	}
	rows := make([]PhaseRow, 0, len(snap.Phases))
	for _, name := range snap.PhaseNames() {
		ps := snap.Phases[name]
		rows = append(rows, PhaseRow{
			Phase:   name,
			Count:   ps.Count,
			TotalMS: ps.TotalMS(),
			MaxMS:   float64(ps.MaxNS) / 1e6,
		})
	}
	return rows
}

// passCounters merges the pass's telemetry counters with the cache and
// hardware-layer counters into one flat inventory.
func passCounters(snap telemetry.Snapshot) map[string]int64 {
	out := make(map[string]int64, len(snap.Counters)+12)
	for name, v := range snap.Counters {
		out[name] = v
	}
	cs := analysis.Snapshot()
	out["cache.graph_builds"] = cs.GraphBuilds
	out["cache.graph_hits"] = cs.GraphHits
	out["cache.slice_builds"] = cs.SliceBuilds
	out["cache.slice_hits"] = cs.SliceHits
	out["cache.bytecode_builds"] = cs.BytecodeBuilds
	out["cache.bytecode_hits"] = cs.BytecodeHits
	pm := pt.Snapshot()
	out["pt.decode_calls"] = pm.DecodeCalls
	out["pt.decode_errors"] = pm.DecodeErrors
	out["pt.decoded_bytes"] = pm.DecodedBytes
	out["pt.salvage_calls"] = pm.SalvageCalls
	out["pt.salvaged_chunks"] = pm.SalvagedChunks
	out["pt.salvaged_instrs"] = pm.SalvagedInstrs
	wm := watch.Snapshot()
	out["watch.arms"] = wm.Arms
	out["watch.traps"] = wm.Traps
	// The fault counters are always materialized, zero or not, so a
	// clean pass and a chaos pass share one schema.
	for _, name := range []string{
		"faults.injected_runs", "faults.crash", "faults.hang",
		"faults.overflow", "faults.corrupt", "faults.drop_traps",
		"faults.reorder_traps", "faults.truncate",
	} {
		if _, ok := out[name]; !ok {
			out[name] = 0
		}
	}
	return out
}

// WriteJSON serializes the result (indented, trailing newline) to path.
func (r *PerfResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ValidateBenchJSON parses a BENCH artifact produced by a WriteJSON
// (perf, sched, or crashloop experiment), dispatching on its
// "experiment" field, and checks the matching observability schema.
// CI's smoke steps run this against the artifacts they just generated.
func ValidateBenchJSON(data []byte) error {
	var probe struct {
		Experiment string `json:"experiment"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return fmt.Errorf("bench json: %w", err)
	}
	switch probe.Experiment {
	case "perf":
		return validatePerfJSON(data)
	case "sched":
		return ValidateSchedJSON(data)
	case "shard":
		return ValidateShardJSON(data)
	case "crashloop":
		return ValidateCrashloopJSON(data)
	case "service":
		return ValidateServiceJSON(data)
	case "vm":
		return ValidateVMJSON(data)
	case "ingest":
		return ValidateIngestJSON(data)
	case "overload":
		return ValidateOverloadJSON(data)
	default:
		return fmt.Errorf("bench json: unknown experiment %q (want perf, sched, shard, crashloop, service, vm, ingest, or overload)", probe.Experiment)
	}
}

// validatePerfJSON checks the perf schema: every worker pass must carry
// the required phase rows and the cache/fault counter families.
func validatePerfJSON(data []byte) error {
	var r PerfResult
	if err := json.Unmarshal(data, &r); err != nil {
		return fmt.Errorf("bench json: %w", err)
	}
	if r.Experiment != "perf" {
		return fmt.Errorf("bench json: experiment %q, want perf", r.Experiment)
	}
	if len(r.Workers) == 0 {
		return fmt.Errorf("bench json: no worker passes")
	}
	if len(r.Phases) != len(r.Workers) || len(r.Counters) != len(r.Workers) {
		return fmt.Errorf("bench json: %d phase rows and %d counter rows for %d workers",
			len(r.Phases), len(r.Counters), len(r.Workers))
	}
	for i, rows := range r.Phases {
		have := make(map[string]bool, len(rows))
		for _, row := range rows {
			have[row.Phase] = true
			if row.Count < 0 || row.TotalMS < 0 || row.MaxMS < 0 {
				return fmt.Errorf("bench json: pass %d phase %s has negative fields", i, row.Phase)
			}
		}
		for _, name := range RequiredPhases {
			if !have[name] {
				return fmt.Errorf("bench json: pass %d missing phase %q", i, name)
			}
		}
	}
	for i, counters := range r.Counters {
		for _, name := range []string{"cache.graph_builds", "cache.slice_builds", "faults.injected_runs", "fleet.dispatched"} {
			if _, ok := counters[name]; !ok {
				return fmt.Errorf("bench json: pass %d missing counter %q", i, name)
			}
		}
	}
	return nil
}
