package experiments

import (
	"fmt"
	"strings"
)

// RenderTable1 renders Table 1 in the paper's column layout.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: bugs used to evaluate Gist (sizes in source LOC, with IR instructions in parentheses)\n\n")
	fmt.Fprintf(&b, "%-13s %-13s %-8s %-8s %12s %15s %15s %22s %14s\n",
		"Bug", "Software", "Version", "BugID",
		"Static slice", "Ideal sketch", "Gist sketch", "Recurrences <time>", "Overhead")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s %-13s %-8s %-8s %6d (%4d) %8d (%4d) %8d (%4d) %10d <%s> (%s) %9.2f%%\n",
			r.Bug, r.Software, r.Version, r.BugID,
			r.SliceLOC, r.SliceInstrs,
			r.IdealLOC, r.IdealInstrs,
			r.SketchLOC, r.SketchInstr,
			r.Recurrences,
			r.DiagnosisTime.Round(1e6), r.AnalysisTime.Round(1e6),
			r.AvgOverheadPct)
	}
	return b.String()
}

// RenderFig9 renders the accuracy figure as a table.
func RenderFig9(rows []Fig9Row) string {
	var b strings.Builder
	b.WriteString("Fig. 9: accuracy of Gist (percent)\n\n")
	fmt.Fprintf(&b, "%-13s %10s %10s %10s\n", "Bug", "Relevance", "Ordering", "Overall")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s %10.1f %10.1f %10.1f\n", r.Bug, r.Relevance, r.Ordering, r.Overall)
	}
	rel, ord, overall := Fig9Averages(rows)
	fmt.Fprintf(&b, "%-13s %10.1f %10.1f %10.1f\n", "average", rel, ord, overall)
	return b.String()
}

// RenderFig10 renders the technique-contribution figure as a table.
func RenderFig10(rows []Fig10Row) string {
	var b strings.Builder
	b.WriteString("Fig. 10: contribution of each technique to overall accuracy (percent)\n\n")
	fmt.Fprintf(&b, "%-13s %12s %12s %12s\n", "Bug", "static", "+ctrl-flow", "+data-flow")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s %12.1f %12.1f %12.1f\n", r.Bug, r.StaticOnly, r.PlusCF, r.PlusDF)
	}
	return b.String()
}

// RenderFig11 renders overhead-vs-slice-size as a series.
func RenderFig11(points []Fig11Point) string {
	var b strings.Builder
	b.WriteString("Fig. 11: average client overhead vs. tracked slice size\n\n")
	fmt.Fprintf(&b, "%12s %14s\n", "slice size", "overhead (%)")
	for _, p := range points {
		fmt.Fprintf(&b, "%12d %14.2f\n", p.SliceSize, p.AvgOverheadPct)
	}
	return b.String()
}

// RenderFig12 renders the σ tradeoff.
func RenderFig12(rows []Fig12Row) string {
	var b strings.Builder
	b.WriteString("Fig. 12: tradeoff between initial slice size, accuracy, and latency\n\n")
	fmt.Fprintf(&b, "%8s %14s %22s\n", "sigma0", "accuracy (%)", "latency (recurrences)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %14.1f %22.1f\n", r.Sigma0, r.AvgAccuracy, r.AvgLatency)
	}
	return b.String()
}

// RenderFig13 renders the full-tracing comparison.
func RenderFig13(rows []Fig13Row) string {
	var b strings.Builder
	b.WriteString("Fig. 13: full-tracing overhead, Mozilla-rr-style record/replay vs. Intel PT\n\n")
	fmt.Fprintf(&b, "%-13s %14s %18s %10s\n", "Bug", "Intel PT (%)", "record/replay (%)", "ratio")
	var ptSum, rrSum float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s %14.2f %18.1f %9.1fx\n", r.Bug, r.IntelPTPct, r.MozillaRRPct, r.Ratio)
		ptSum += r.IntelPTPct
		rrSum += r.MozillaRRPct
	}
	n := float64(len(rows))
	if n > 0 {
		fmt.Fprintf(&b, "%-13s %14.2f %18.1f\n", "average", ptSum/n, rrSum/n)
	}
	return b.String()
}

// RenderBreakdown renders the §5.3 overhead decomposition.
func RenderBreakdown(rows []BreakdownRow) string {
	var b strings.Builder
	b.WriteString("§5.3: Gist overhead breakdown at sigma=2 (percent)\n\n")
	fmt.Fprintf(&b, "%-13s %12s %12s %12s\n", "Bug", "ctrl-flow", "data-flow", "full")
	var cf, df, full float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s %12.2f %12.2f %12.2f\n", r.Bug, r.CFOnlyPct, r.DFOnlyPct, r.FullPct)
		cf += r.CFOnlyPct
		df += r.DFOnlyPct
		full += r.FullPct
	}
	n := float64(len(rows))
	if n > 0 {
		fmt.Fprintf(&b, "%-13s %12.2f %12.2f %12.2f\n", "average", cf/n, df/n, full/n)
	}
	return b.String()
}

// RenderExtPT renders the §6 extension comparison.
func RenderExtPT(rows []ExtPTRow) string {
	var b strings.Builder
	b.WriteString("§6: data flow via hardware watchpoints vs. extended PT (PTWRITE-style)\n\n")
	fmt.Fprintf(&b, "%-13s %18s %18s %18s %18s\n", "Bug",
		"wp overhead (%)", "wp accuracy (%)", "ext overhead (%)", "ext accuracy (%)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s %18.2f %18.1f %18.2f %18.1f\n",
			r.Bug, r.WPOverhead, r.WPAccuracy, r.ExtOverhead, r.ExtAccuracy)
	}
	return b.String()
}

// RenderChaos renders the chaos sweep, one row per (rate, bug).
func RenderChaos(rows []ChaosRow) string {
	var b strings.Builder
	b.WriteString("Chaos: diagnosis quality vs. composite fleet fault rate (fixed seed, deterministic)\n\n")
	fmt.Fprintf(&b, "%6s %-13s %13s %7s %6s %5s %5s %7s %7s %8s %9s\n",
		"rate", "Bug", "accuracy (%)", "recurr", "runs",
		"lost", "dead", "decode", "quarant", "reseeded", "status")
	for _, r := range rows {
		status := "ok"
		switch {
		case r.Err:
			status = "failed"
		case r.LowConfidence:
			status = "low-conf"
		}
		fmt.Fprintf(&b, "%5.0f%% %-13s %13.1f %7d %6d %5d %5d %7d %7d %8d %9s\n",
			r.Rate*100, r.Bug, r.Accuracy, r.Recurrences, r.TotalRuns,
			r.Health.Lost, r.Health.Deadlined, r.Health.DecodeErrs,
			r.Health.Quarantined, r.Health.Reseeded, status)
	}
	return b.String()
}

// RenderPerf renders the fleet-scaling experiment.
func RenderPerf(r *PerfResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Perf: wall-clock scaling of the parallel fleet (GOMAXPROCS=%d; results byte-identical at every width)\n\n", r.GoMaxProcs)
	fmt.Fprintf(&b, "%-13s %6s", "Bug", "runs")
	for _, w := range r.Workers {
		fmt.Fprintf(&b, " %8s", fmt.Sprintf("w=%d", w))
	}
	b.WriteString("  (ms per diagnosis, speedup vs w=1)\n")
	for _, row := range r.Bugs {
		fmt.Fprintf(&b, "%-13s %6d", row.Bug, row.TotalRuns)
		for i := range r.Workers {
			fmt.Fprintf(&b, " %8.0f", row.WallMS[i])
		}
		b.WriteString("  ")
		for i := range r.Workers {
			fmt.Fprintf(&b, " %5.2fx", row.Speedup[i])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-20s", "suite sweep")
	for i := range r.Workers {
		fmt.Fprintf(&b, " %8.0f", r.SweepWallMS[i])
	}
	b.WriteString("  ")
	for i := range r.Workers {
		fmt.Fprintf(&b, " %5.2fx", r.SweepSpeedup[i])
	}
	b.WriteByte('\n')
	if n := len(r.Cache); n > 0 {
		c := r.Cache[n-1]
		fmt.Fprintf(&b, "\nanalysis cache (last pass): %d graph builds / %d hits, %d slice builds / %d hits\n",
			c.GraphBuilds, c.GraphHits, c.SliceBuilds, c.SliceHits)
	}
	if n := len(r.Phases); n > 0 {
		b.WriteString("\nper-phase breakdown (last pass):\n")
		fmt.Fprintf(&b, "  %-14s %8s %12s %10s\n", "phase", "count", "total (ms)", "max (ms)")
		for _, ph := range r.Phases[n-1] {
			fmt.Fprintf(&b, "  %-14s %8d %12.1f %10.2f\n", ph.Phase, ph.Count, ph.TotalMS, ph.MaxMS)
		}
	}
	return b.String()
}

// RenderSWPT renders the §4 hardware-vs-software tracing comparison.
func RenderSWPT(rows []SWPTRow) string {
	var b strings.Builder
	b.WriteString("§4: full control-flow tracing, hardware PT vs. software (PIN-style)\n\n")
	fmt.Fprintf(&b, "%-13s %14s %14s %10s\n", "Bug", "hardware (%)", "software (%)", "ratio")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s %14.2f %14.1f %9.0fx\n", r.Bug, r.HardwarePct, r.SoftwarePct, r.SlowdownVsHWOnce)
	}
	return b.String()
}

// RenderVM renders the engine comparison.
func RenderVM(r *VMResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "VM: single-thread engine comparison, interpreter vs. bytecode (GOMAXPROCS=%d; outcomes byte-identical)\n\n", r.GoMaxProcs)
	fmt.Fprintf(&b, "%-13s %12s %12s %9s %13s %13s %8s\n",
		"Bug", "interp ns", "bytecode ns", "speedup", "interp alloc", "bytec. alloc", "runs/s")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-13s %12d %12d %8.2fx %13d %13d %8.0f\n",
			row.Bug, row.InterpNSOp, row.BytecodeNSOp, row.Speedup,
			row.InterpAllocsOp, row.BytecodeAllocsOp, row.BytecodeRunsPerSec)
	}
	return b.String()
}
