package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bugs"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

// The sched experiment measures the multi-bug scheduler: the whole
// suite diagnosed concurrently over one shared fleet pool
// (internal/sched) against the serial baseline that diagnoses the same
// bugs one campaign at a time. Outcomes are byte-identical by
// construction — Sched verifies that on every pass and fails loudly on
// divergence — so the experiment reports aggregate throughput and the
// round-robin fairness of fleet sharing.

// SchedWidthRow is one shared-pool width's measurement.
type SchedWidthRow struct {
	Width int `json:"width"`
	// SchedWallMS is the wall time of the concurrent scheduler pass;
	// SerialWallMS diagnoses the same campaigns one at a time with the
	// same fleet width.
	SchedWallMS  float64 `json:"sched_wall_ms"`
	SerialWallMS float64 `json:"serial_wall_ms"`
	Speedup      float64 `json:"speedup"`
	// TotalRuns is the production runs all campaigns consumed together;
	// RunsPerSec is that total over the scheduler pass's wall time.
	TotalRuns  int     `json:"total_runs"`
	RunsPerSec float64 `json:"runs_per_sec"`
	// Fairness is the mean over scheduler rounds of Jain's index across
	// the live campaigns' per-round run consumption: 1.0 means every
	// live campaign drew an equal fleet share each round.
	Fairness float64 `json:"fairness"`
	// Rounds is the longest campaign's round count.
	Rounds int `json:"rounds"`
}

// SchedResult is the full sched experiment, serialized by -json.
type SchedResult struct {
	Experiment string          `json:"experiment"`
	GoMaxProcs int             `json:"gomaxprocs"`
	Bugs       []string        `json:"bugs"`
	Widths     []int           `json:"widths"`
	Rows       []SchedWidthRow `json:"rows"`
	// Campaigns is each pass's per-tenant telemetry (aligned with
	// Widths): phase spans and counters attributed to each bug's
	// campaign label, the multi-tenant half of -metrics-json.
	Campaigns []map[string]telemetry.CampaignStats `json:"campaigns"`
	// Counters is each pass's aggregate counter inventory.
	Counters []map[string]int64 `json:"counters"`
}

// JainIndex is Jain's fairness index (sum x)^2 / (n * sum x^2) over a
// non-negative allocation vector: 1.0 for perfectly equal shares,
// approaching 1/n as one tenant monopolizes. An empty or all-zero
// vector is vacuously fair.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// roundFairness averages Jain's index across scheduler rounds: round r
// considers every campaign live in r (its RunsPerRound has an entry).
func roundFairness(outs []sched.Outcome) (float64, int) {
	rounds := 0
	for _, o := range outs {
		if o.Rounds > rounds {
			rounds = o.Rounds
		}
	}
	if rounds == 0 {
		return 1, 0
	}
	var idx []float64
	for r := 0; r < rounds; r++ {
		var shares []float64
		for _, o := range outs {
			if r < len(o.RunsPerRound) {
				shares = append(shares, float64(o.RunsPerRound[r]))
			}
		}
		idx = append(idx, JainIndex(shares))
	}
	var sum float64
	for _, v := range idx {
		sum += v
	}
	return sum / float64(len(idx)), rounds
}

// schedFingerprint summarizes everything diagnosis-visible about an
// outcome so serial and scheduled passes can be compared exactly.
func schedFingerprint(res *core.Result, err error) string {
	if err != nil {
		return "err: " + err.Error()
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "disc=%d total=%d rec=%d ov=%.9f\n",
		res.DiscoveryRuns, res.TotalRuns, res.FailureRecurrences, res.AvgOverheadPct)
	fmt.Fprintf(&sb, "health=%+v\n", res.Health)
	for _, it := range res.Iters {
		fmt.Fprintf(&sb, "iter=%+v\n", it)
	}
	fmt.Fprintf(&sb, "slice=%v\n", res.Slice.IDs)
	sb.WriteString(res.Sketch.Render())
	for _, r := range res.Sketch.AllRanked {
		fmt.Fprintf(&sb, "ranked=%+v\n", r)
	}
	return sb.String()
}

type schedTenant struct {
	bug    *bugs.Bug
	cfg    core.Config
	report *vm.FailureReport
	disc   int
}

// Sched runs the multi-bug scheduler experiment over the given shared
// pool widths (nil = {1, 2, 4, 8}): per width, a serial baseline pass,
// then a concurrent scheduler pass whose per-campaign outcomes must be
// byte-identical to the baseline.
func Sched(suite []*bugs.Bug, widths []int) (*SchedResult, error) {
	if suite == nil {
		suite = bugs.All()
	}
	if len(widths) == 0 {
		widths = []int{1, 2, 4, 8}
	}
	res := &SchedResult{
		Experiment: "sched",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Widths:     widths,
	}

	var tenants []schedTenant
	for _, b := range suite {
		res.Bugs = append(res.Bugs, b.Name)
		cfg := b.GistConfig()
		cfg.Features = core.AllFeatures()
		cfg.Label = b.Name
		cfg.StopWhen = DeveloperOracle(b)
		report, disc, err := core.FirstFailure(cfg)
		if err != nil {
			return res, fmt.Errorf("%s: discovery: %w", b.Name, err)
		}
		tenants = append(tenants, schedTenant{bug: b, cfg: cfg, report: report, disc: disc})
	}

	for _, w := range widths {
		// Serial baseline: same campaigns, same fleet width, one at a
		// time. Telemetry is off here so the pass's artifact carries only
		// the scheduler's activity.
		t0 := time.Now()
		serial := make([]string, len(tenants))
		for i, tn := range tenants {
			cfg := tn.cfg
			cfg.Workers = w
			r, err := core.RunFromReport(cfg, tn.report, tn.disc)
			if err != nil {
				return res, fmt.Errorf("serial %s width=%d: %w", tn.bug.Name, w, err)
			}
			serial[i] = schedFingerprint(r, nil)
		}
		serialMS := float64(time.Since(t0).Microseconds()) / 1e3

		tel := telemetry.New()
		s := sched.New(w)
		for _, tn := range tenants {
			cfg := tn.cfg
			cfg.Workers = w
			cfg.Telemetry = tel
			camp, err := core.NewCampaign(cfg, tn.report, tn.disc)
			if err != nil {
				return res, fmt.Errorf("sched %s width=%d: %w", tn.bug.Name, w, err)
			}
			s.Add(camp)
		}
		t1 := time.Now()
		outs := s.Run()
		schedWall := time.Since(t1)

		totalRuns := 0
		for i, out := range outs {
			if out.Err != nil {
				return res, fmt.Errorf("sched %s width=%d: %w", tenants[i].bug.Name, w, out.Err)
			}
			if got := schedFingerprint(out.Result, nil); got != serial[i] {
				return res, fmt.Errorf("sched %s width=%d: scheduled diagnosis diverged from serial baseline", tenants[i].bug.Name, w)
			}
			totalRuns += out.Result.TotalRuns
		}
		fairness, rounds := roundFairness(outs)
		schedMS := float64(schedWall.Microseconds()) / 1e3
		row := SchedWidthRow{
			Width:        w,
			SchedWallMS:  schedMS,
			SerialWallMS: serialMS,
			TotalRuns:    totalRuns,
			RunsPerSec:   float64(totalRuns) / schedWall.Seconds(),
			Fairness:     fairness,
			Rounds:       rounds,
		}
		if schedMS > 0 {
			row.Speedup = serialMS / schedMS
		}
		res.Rows = append(res.Rows, row)
		snap := tel.Snapshot()
		if snap.Campaigns == nil {
			snap.Campaigns = map[string]telemetry.CampaignStats{}
		}
		res.Campaigns = append(res.Campaigns, snap.Campaigns)
		res.Counters = append(res.Counters, snap.Counters)
	}
	return res, nil
}

// WriteJSON serializes the result (indented, trailing newline) to path.
func (r *SchedResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// RenderSched renders the sched experiment for the terminal.
func RenderSched(r *SchedResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Multi-bug scheduler: %d campaigns over one shared fleet (GOMAXPROCS=%d)\n",
		len(r.Bugs), r.GoMaxProcs)
	fmt.Fprintf(&sb, "campaigns: %s\n\n", strings.Join(r.Bugs, ", "))
	fmt.Fprintf(&sb, "%-7s %12s %12s %8s %10s %11s %9s %7s\n",
		"width", "sched ms", "serial ms", "speedup", "runs", "runs/sec", "fairness", "rounds")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-7d %12.1f %12.1f %7.2fx %10d %11.1f %9.3f %7d\n",
			row.Width, row.SchedWallMS, row.SerialWallMS, row.Speedup,
			row.TotalRuns, row.RunsPerSec, row.Fairness, row.Rounds)
	}
	sb.WriteString("\nEvery scheduled diagnosis verified byte-identical to its serial baseline.\n")
	return sb.String()
}

// ValidateSchedJSON checks a sched BENCH artifact's schema: width rows
// aligned with per-pass campaign telemetry, fairness within (0,1], and
// every enrolled bug attributed in every pass.
func ValidateSchedJSON(data []byte) error {
	var r SchedResult
	if err := json.Unmarshal(data, &r); err != nil {
		return fmt.Errorf("bench json: %w", err)
	}
	if r.Experiment != "sched" {
		return fmt.Errorf("bench json: experiment %q, want sched", r.Experiment)
	}
	if len(r.Widths) == 0 {
		return fmt.Errorf("bench json: no width passes")
	}
	if len(r.Bugs) == 0 {
		return fmt.Errorf("bench json: no campaigns")
	}
	if len(r.Rows) != len(r.Widths) || len(r.Campaigns) != len(r.Widths) || len(r.Counters) != len(r.Widths) {
		return fmt.Errorf("bench json: %d rows, %d campaign maps, %d counter maps for %d widths",
			len(r.Rows), len(r.Campaigns), len(r.Counters), len(r.Widths))
	}
	for i, row := range r.Rows {
		if row.Width != r.Widths[i] {
			return fmt.Errorf("bench json: row %d width %d, widths list says %d", i, row.Width, r.Widths[i])
		}
		if row.TotalRuns <= 0 {
			return fmt.Errorf("bench json: pass %d consumed no runs", i)
		}
		if row.Fairness <= 0 || row.Fairness > 1 {
			return fmt.Errorf("bench json: pass %d fairness %g outside (0,1]", i, row.Fairness)
		}
		if row.SchedWallMS < 0 || row.SerialWallMS < 0 || row.RunsPerSec < 0 {
			return fmt.Errorf("bench json: pass %d has negative timings", i)
		}
	}
	for i, camps := range r.Campaigns {
		for _, bug := range r.Bugs {
			cs, ok := camps[bug]
			if !ok {
				return fmt.Errorf("bench json: pass %d missing campaign telemetry for %q", i, bug)
			}
			if cs.Counters["fleet.dispatched"] <= 0 {
				return fmt.Errorf("bench json: pass %d campaign %q dispatched no runs", i, bug)
			}
		}
	}
	for i, counters := range r.Counters {
		if counters["fleet.dispatched"] <= 0 {
			return fmt.Errorf("bench json: pass %d aggregate counters missing fleet.dispatched", i)
		}
	}
	return nil
}
