package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// TestShardBenchJSONRoundTrip runs a three-bug, two-proc shard pass —
// which internally verifies every fleet sketch against the
// single-process baseline and kills a worker in the chaos pass — and
// validates the artifact it writes, the same check CI's shard smoke
// step applies.
func TestShardBenchJSONRoundTrip(t *testing.T) {
	res, err := Shard(Suite("pbzip2", "curl", "memcached"), []int{1, 2})
	if err != nil {
		t.Fatalf("Shard: %v", err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_shard.json")
	if err := res.WriteJSON(path); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBenchJSON(data); err != nil {
		t.Fatalf("ValidateBenchJSON: %v", err)
	}

	if len(res.Rows) != 2 {
		t.Fatalf("want 2 passes, got %d rows", len(res.Rows))
	}
	for i, row := range res.Rows {
		if row.TotalRuns == 0 {
			t.Errorf("pass %d did no work: %+v", i, row)
		}
		if !row.Identical {
			t.Errorf("pass %d not verified byte-identical", i)
		}
		if len(row.PerWorkerRuns) != row.Procs {
			t.Errorf("pass %d: %d per-worker entries for %d procs", i, len(row.PerWorkerRuns), row.Procs)
		}
	}
	if res.Chaos == nil {
		t.Fatalf("no chaos pass")
	}
	if res.Chaos.Takeovers == 0 || !res.Chaos.Identical {
		t.Errorf("chaos pass = %+v, want at least one byte-identical takeover", res.Chaos)
	}
}

// TestValidateShardJSONRejects covers the malformed shard-artifact
// paths, including dispatch through ValidateBenchJSON.
func TestValidateShardJSONRejects(t *testing.T) {
	chaos := `"chaos":{"procs":3,"victim":"w1","takeovers":1,"identical":true}`
	cases := map[string]string{
		"not json":       `{`,
		"no procs":       `{"experiment":"shard","bugs":["a"],"procs":[],"rows":[],` + chaos + `}`,
		"no bugs":        `{"experiment":"shard","bugs":[],"procs":[1],"rows":[{"procs":1}],` + chaos + `}`,
		"misaligned":     `{"experiment":"shard","bugs":["a"],"procs":[1,2],"rows":[{"procs":1}],` + chaos + `}`,
		"procs mismatch": `{"experiment":"shard","bugs":["a"],"procs":[1],"rows":[{"procs":3,"total_runs":1,"fairness":1,"per_worker_runs":[1,1,1],"identical":true}],` + chaos + `}`,
		"no runs":        `{"experiment":"shard","bugs":["a"],"procs":[1],"rows":[{"procs":1,"total_runs":0,"fairness":1,"per_worker_runs":[0],"identical":true}],` + chaos + `}`,
		"bad fairness":   `{"experiment":"shard","bugs":["a"],"procs":[1],"rows":[{"procs":1,"total_runs":5,"fairness":1.5,"per_worker_runs":[5],"identical":true}],` + chaos + `}`,
		"short workers":  `{"experiment":"shard","bugs":["a"],"procs":[2],"rows":[{"procs":2,"total_runs":5,"fairness":1,"per_worker_runs":[5],"identical":true}],` + chaos + `}`,
		"not identical":  `{"experiment":"shard","bugs":["a"],"procs":[1],"rows":[{"procs":1,"total_runs":5,"fairness":1,"per_worker_runs":[5],"identical":false}],` + chaos + `}`,
		"no chaos":       `{"experiment":"shard","bugs":["a"],"procs":[1],"rows":[{"procs":1,"total_runs":5,"fairness":1,"per_worker_runs":[5],"identical":true}]}`,
		"chaos no steal": `{"experiment":"shard","bugs":["a"],"procs":[1],"rows":[{"procs":1,"total_runs":5,"fairness":1,"per_worker_runs":[5],"identical":true}],"chaos":{"procs":3,"victim":"w1","takeovers":0,"identical":true}}`,
		"chaos diverged": `{"experiment":"shard","bugs":["a"],"procs":[1],"rows":[{"procs":1,"total_runs":5,"fairness":1,"per_worker_runs":[5],"identical":true}],"chaos":{"procs":3,"victim":"w1","takeovers":1,"identical":false}}`,
	}
	for name, data := range cases {
		if err := ValidateBenchJSON([]byte(data)); err == nil {
			t.Errorf("%s: validated, want error", name)
		}
	}
}
