package cfg

import (
	"fmt"
	"strings"

	"repro/internal/ir"
	"repro/internal/lang/sema"
)

// TICFG is the thread interprocedural control flow graph of §3.1: the
// per-function CFGs connected by call/return edges (ICFG), further
// augmented with thread-creation and thread-join edges. A thread-creation
// edge is treated like a callsite whose target is the thread start
// routine; a join edge connects the routine's returns back to the join
// site. The TICFG overapproximates all dynamic control flow the program
// can exhibit.
type TICFG struct {
	Prog *ir.Program

	// CallEdges maps a call instruction ID to its callee.
	CallEdges map[int]*ir.Func
	// SpawnEdges maps a spawn instruction ID to the thread start routine.
	SpawnEdges map[int]*ir.Func
	// JoinEdges maps a join instruction ID to the routines whose
	// termination it may observe. Without value tracking for thread IDs
	// this is the set of all spawned routines — the same
	// overapproximation the paper accepts statically and later corrects
	// with runtime information.
	JoinEdges map[int][]*ir.Func
	// Callsites lists, per function, the call/spawn instruction IDs that
	// can transfer control into it.
	Callsites map[*ir.Func][]int
	// Rets lists, per function, its return instructions.
	Rets map[*ir.Func][]*ir.Instr

	// Dom and PDom are per-function dominator and postdominator trees,
	// shared by the slicer and the instrumentation planner.
	Dom  map[*ir.Func]*DomTree
	PDom map[*ir.Func]*PostDomTree
}

// BuildTICFG computes the TICFG and the per-function dominance trees.
func BuildTICFG(p *ir.Program) *TICFG {
	g := &TICFG{
		Prog:       p,
		CallEdges:  make(map[int]*ir.Func),
		SpawnEdges: make(map[int]*ir.Func),
		JoinEdges:  make(map[int][]*ir.Func),
		Callsites:  make(map[*ir.Func][]int),
		Rets:       make(map[*ir.Func][]*ir.Instr),
		Dom:        make(map[*ir.Func]*DomTree),
		PDom:       make(map[*ir.Func]*PostDomTree),
	}
	var spawned []*ir.Func
	for _, in := range p.Instrs {
		switch in.Op {
		case ir.OpCall:
			callee := p.FuncByName[in.Callee]
			if callee != nil {
				g.CallEdges[in.ID] = callee
				g.Callsites[callee] = append(g.Callsites[callee], in.ID)
			}
		case ir.OpCallB:
			if in.Builtin == sema.BuiltinSpawn {
				target := p.FuncByName[p.SpawnTargets[in.ID]]
				if target != nil {
					g.SpawnEdges[in.ID] = target
					g.Callsites[target] = append(g.Callsites[target], in.ID)
					spawned = append(spawned, target)
				}
			}
		case ir.OpRet:
			g.Rets[in.Blk.Fn] = append(g.Rets[in.Blk.Fn], in)
		}
	}
	for _, in := range p.Instrs {
		if in.Op == ir.OpCallB && in.Builtin == sema.BuiltinJoin {
			g.JoinEdges[in.ID] = append([]*ir.Func(nil), spawned...)
		}
	}
	for _, f := range p.Funcs {
		g.Dom[f] = Dominators(f)
		g.PDom[f] = PostDominators(f)
	}
	return g
}

// RetValues returns the operands that a call to f may return — the
// getRetValues step of Algorithm 1 (intraprocedural: collect the returned
// operands of every ret in f).
func (g *TICFG) RetValues(f *ir.Func) []ir.Value {
	var vals []ir.Value
	for _, ret := range g.Rets[f] {
		if !ret.A.IsNil() {
			vals = append(vals, ret.A)
		}
	}
	return vals
}

// ArgValues returns, for parameter index argIdx of f, the operand passed
// at every callsite (and spawn site) of f — the getArgValues step of
// Algorithm 1. For spawn sites, parameter 0 of the start routine receives
// the spawn call's second argument.
func (g *TICFG) ArgValues(f *ir.Func, argIdx int) []struct {
	Site *ir.Instr
	Val  ir.Value
} {
	var out []struct {
		Site *ir.Instr
		Val  ir.Value
	}
	for _, siteID := range g.Callsites[f] {
		site := g.Prog.Instrs[siteID]
		var v ir.Value
		switch site.Op {
		case ir.OpCall:
			if argIdx < len(site.Args) {
				v = site.Args[argIdx]
			}
		case ir.OpCallB: // spawn
			if argIdx == 0 && len(site.Args) == 2 {
				v = site.Args[1]
			}
		}
		if !v.IsNil() {
			out = append(out, struct {
				Site *ir.Instr
				Val  ir.Value
			}{site, v})
		}
	}
	return out
}

// EntryInstr returns the first instruction of f.
func EntryInstr(f *ir.Func) *ir.Instr { return f.Entry().Instrs[0] }

// String summarizes the graph for diagnostics.
func (g *TICFG) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TICFG of %s:\n", g.Prog.Name)
	for id, f := range g.CallEdges {
		fmt.Fprintf(&b, "  call %%%d -> %s\n", id, f.Name)
	}
	for id, f := range g.SpawnEdges {
		fmt.Fprintf(&b, "  spawn %%%d -> %s\n", id, f.Name)
	}
	for id, fs := range g.JoinEdges {
		names := make([]string, len(fs))
		for i, f := range fs {
			names[i] = f.Name
		}
		fmt.Fprintf(&b, "  join %%%d <- {%s}\n", id, strings.Join(names, ", "))
	}
	return b.String()
}
