// Package cfg provides the control-flow analyses Gist's static phase is
// built on: dominator and postdominator trees for each function, and the
// thread interprocedural control flow graph (TICFG) of §3.1 — the ICFG
// augmented with thread creation and join edges — which the backward
// slicer and the instrumentation planner both traverse.
package cfg

import "repro/internal/ir"

// DomTree is a dominator tree for one function, computed with the
// iterative algorithm of Cooper, Harvey and Kennedy over a reverse
// postorder of the CFG.
type DomTree struct {
	fn   *ir.Func
	idom []int // idom[block ID] = immediate dominator's block ID; entry maps to itself; -1 = unreachable
	rpo  []int // rpo[block ID] = reverse-postorder number
}

// Dominators computes the dominator tree of f.
func Dominators(f *ir.Func) *DomTree {
	order := postorder(f.Entry(), func(b *ir.Block) []*ir.Block { return b.Succs() })
	return &DomTree{fn: f, idom: buildIdom(len(f.Blocks), order, blockPreds)}
}

// blockPreds adapts ir.Block predecessor lists.
func blockPreds(b *ir.Block) []*ir.Block { return b.Preds }

// postorder returns blocks in postorder of the graph rooted at entry,
// following succ for edges.
func postorder(entry *ir.Block, succ func(*ir.Block) []*ir.Block) []*ir.Block {
	var order []*ir.Block
	seen := make(map[*ir.Block]bool)
	var visit func(b *ir.Block)
	visit = func(b *ir.Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range succ(b) {
			visit(s)
		}
		order = append(order, b)
	}
	visit(entry)
	return order
}

// buildIdom runs the CHK iterative dominator algorithm.
// order is a postorder of reachable blocks (entry last).
func buildIdom(numBlocks int, order []*ir.Block, preds func(*ir.Block) []*ir.Block) []int {
	idom := make([]int, numBlocks)
	for i := range idom {
		idom[i] = -1
	}
	if len(order) == 0 {
		return idom
	}
	// Reverse postorder numbering.
	rpoNum := make([]int, numBlocks)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range order {
		rpoNum[b.ID] = len(order) - 1 - i
	}
	entry := order[len(order)-1]
	idom[entry.ID] = entry.ID

	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}

	changed := true
	for changed {
		changed = false
		// Process in reverse postorder (skip entry).
		for i := len(order) - 2; i >= 0; i-- {
			b := order[i]
			newIdom := -1
			for _, p := range preds(b) {
				if idom[p.ID] == -1 {
					continue // unreachable or not yet processed
				}
				if newIdom == -1 {
					newIdom = p.ID
				} else {
					newIdom = intersect(newIdom, p.ID)
				}
			}
			if newIdom != -1 && idom[b.ID] != newIdom {
				idom[b.ID] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// IDom returns the immediate dominator of b, or nil for the entry block
// and unreachable blocks.
func (d *DomTree) IDom(b *ir.Block) *ir.Block {
	id := d.idom[b.ID]
	if id == -1 || id == b.ID {
		return nil
	}
	return d.fn.Blocks[id]
}

// Dominates reports whether a dominates b (reflexively).
func (d *DomTree) Dominates(a, b *ir.Block) bool {
	if d.idom[b.ID] == -1 && b.ID != d.fn.Entry().ID {
		return false // b unreachable
	}
	for {
		if a.ID == b.ID {
			return true
		}
		next := d.idom[b.ID]
		if next == -1 || next == b.ID {
			return false
		}
		b = d.fn.Blocks[next]
	}
}

// StrictlyDominates reports whether a dominates b and a != b.
func (d *DomTree) StrictlyDominates(a, b *ir.Block) bool {
	return a != b && d.Dominates(a, b)
}

// InstrSDom reports whether instruction a strictly dominates instruction b
// (§3.2.2): every path from function entry to b passes through a, a != b.
// Both instructions must belong to the same function.
func (d *DomTree) InstrSDom(a, b *ir.Instr) bool {
	if a == b {
		return false
	}
	if a.Blk == b.Blk {
		return a.Idx < b.Idx
	}
	return d.StrictlyDominates(a.Blk, b.Blk)
}

// PostDomTree is a postdominator tree for one function, computed on the
// reverse CFG with a virtual exit node joining all returning blocks.
type PostDomTree struct {
	fn    *ir.Func
	ipdom []int // ipdom[block ID] = immediate postdominator; -1 = virtual exit or unreachable
}

// PostDominators computes the postdominator tree of f.
func PostDominators(f *ir.Func) *PostDomTree {
	n := len(f.Blocks)
	// Virtual exit is node n. Build reverse graph adjacency.
	succs := make([][]int, n+1)
	preds := make([][]int, n+1)
	for _, b := range f.Blocks {
		ss := b.Succs()
		if len(ss) == 0 {
			succs[b.ID] = append(succs[b.ID], n)
			preds[n] = append(preds[n], b.ID)
		}
		for _, s := range ss {
			succs[b.ID] = append(succs[b.ID], s.ID)
			preds[s.ID] = append(preds[s.ID], b.ID)
		}
	}
	// Postorder of the *reverse* graph rooted at virtual exit: edges are
	// preds.
	var order []int
	seen := make([]bool, n+1)
	var visit func(u int)
	visit = func(u int) {
		if seen[u] {
			return
		}
		seen[u] = true
		for _, p := range preds[u] {
			visit(p)
		}
		order = append(order, u)
	}
	visit(n)

	idom := make([]int, n+1)
	for i := range idom {
		idom[i] = -1
	}
	rpoNum := make([]int, n+1)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, u := range order {
		rpoNum[u] = len(order) - 1 - i
	}
	idom[n] = n
	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		for i := len(order) - 2; i >= 0; i-- {
			u := order[i]
			newIdom := -1
			// "preds" in the reverse graph are the successors in the
			// forward graph.
			for _, s := range succs[u] {
				if idom[s] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = s
				} else {
					newIdom = intersect(newIdom, s)
				}
			}
			if newIdom != -1 && idom[u] != newIdom {
				idom[u] = newIdom
				changed = true
			}
		}
	}
	pt := &PostDomTree{fn: f, ipdom: make([]int, n)}
	for i := 0; i < n; i++ {
		if idom[i] == -1 || idom[i] == n {
			pt.ipdom[i] = -1
		} else {
			pt.ipdom[i] = idom[i]
		}
	}
	return pt
}

// IPDom returns the immediate postdominator block of b, or nil if it is
// the virtual exit (i.e. b reaches function return directly).
func (p *PostDomTree) IPDom(b *ir.Block) *ir.Block {
	id := p.ipdom[b.ID]
	if id == -1 {
		return nil
	}
	return p.fn.Blocks[id]
}

// PostDominates reports whether a postdominates b (reflexively).
func (p *PostDomTree) PostDominates(a, b *ir.Block) bool {
	for {
		if a.ID == b.ID {
			return true
		}
		next := p.ipdom[b.ID]
		if next == -1 {
			return false
		}
		b = p.fn.Blocks[next]
	}
}
