package cfg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := ir.Compile("t.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

const diamond = `
int main() {
	int x = input(0);
	int y = 0;
	if (x > 0) { y = 1; } else { y = 2; }
	return y;
}`

func TestDominatorsDiamond(t *testing.T) {
	p := compile(t, diamond)
	f := p.FuncByName["main"]
	d := Dominators(f)
	entry := f.Entry()
	// Entry dominates every reachable block.
	for _, b := range f.Blocks {
		if len(b.Preds) == 0 && b != entry {
			continue // unreachable filler
		}
		if !d.Dominates(entry, b) {
			t.Errorf("entry should dominate bb%d", b.ID)
		}
	}
	// The two branch arms do not dominate the join block.
	var branch *ir.Block
	for _, b := range f.Blocks {
		if tm := b.Terminator(); tm != nil && tm.Op == ir.OpBr {
			branch = b
		}
	}
	if branch == nil {
		t.Fatal("no branch block")
	}
	thenB, elseB := branch.Succs()[0], branch.Succs()[1]
	// Find the join: a block with 2 preds.
	var join *ir.Block
	for _, b := range f.Blocks {
		if len(b.Preds) == 2 {
			join = b
		}
	}
	if join == nil {
		t.Fatal("no join block")
	}
	if d.Dominates(thenB, join) || d.Dominates(elseB, join) {
		t.Error("branch arms must not dominate the join")
	}
	if !d.Dominates(branch, join) {
		t.Error("branch block must dominate the join")
	}
	if id := d.IDom(join); id == nil || !d.Dominates(branch, id) {
		t.Errorf("idom(join) = %v", id)
	}
}

func TestPostDominatorsDiamond(t *testing.T) {
	p := compile(t, diamond)
	f := p.FuncByName["main"]
	pd := PostDominators(f)
	var branch, join *ir.Block
	for _, b := range f.Blocks {
		if tm := b.Terminator(); tm != nil && tm.Op == ir.OpBr {
			branch = b
		}
		if len(b.Preds) == 2 {
			join = b
		}
	}
	if !pd.PostDominates(join, branch) {
		t.Error("join must postdominate the branch")
	}
	if got := pd.IPDom(branch); got != join {
		t.Errorf("ipdom(branch) = %v, want join bb%d", got, join.ID)
	}
	// The block ending in ret has no ipdom (virtual exit).
	for _, b := range f.Blocks {
		if tm := b.Terminator(); tm != nil && tm.Op == ir.OpRet {
			if pd.IPDom(b) != nil {
				t.Errorf("ret block bb%d should have nil ipdom", b.ID)
			}
		}
	}
}

func TestInstrSDomSameBlock(t *testing.T) {
	p := compile(t, "int main() { int a = 1; int b = 2; return a + b; }")
	f := p.FuncByName["main"]
	d := Dominators(f)
	blk := f.Entry()
	if len(blk.Instrs) < 3 {
		t.Fatal("expected several instructions in entry")
	}
	a, b := blk.Instrs[0], blk.Instrs[2]
	if !d.InstrSDom(a, b) {
		t.Error("earlier instruction should strictly dominate later one in same block")
	}
	if d.InstrSDom(b, a) {
		t.Error("later instruction must not dominate earlier one")
	}
	if d.InstrSDom(a, a) {
		t.Error("sdom is irreflexive")
	}
}

func TestDominatorsLoop(t *testing.T) {
	p := compile(t, `
int main() {
	int s = 0;
	for (int i = 0; i < 10; i++) { s = s + i; }
	return s;
}`)
	f := p.FuncByName["main"]
	d := Dominators(f)
	pd := PostDominators(f)
	// The loop condition block dominates the body and the exit.
	var cond *ir.Block
	for _, b := range f.Blocks {
		if len(b.Preds) >= 2 {
			cond = b // condition: entered from init and from post
		}
	}
	if cond == nil {
		t.Fatal("no loop condition block found")
	}
	for _, s := range cond.Succs() {
		if !d.Dominates(cond, s) {
			t.Errorf("loop condition should dominate successor bb%d", s.ID)
		}
	}
	// The exit block postdominates the condition.
	tm := cond.Terminator()
	if tm.Op == ir.OpBr {
		exit := tm.Else
		if !pd.PostDominates(exit, cond) {
			t.Error("loop exit should postdominate the condition")
		}
	}
}

// randomCFG builds a random function shape directly in IR to
// property-test dominance: entry is block 0; every block gets a
// terminator leading to random later-or-earlier blocks.
func randomCFG(rng *rand.Rand, nBlocks int) *ir.Func {
	f := &ir.Func{Name: "rand"}
	for i := 0; i < nBlocks; i++ {
		f.NewBlock()
	}
	for i, b := range f.Blocks {
		switch rng.Intn(3) {
		case 0: // ret
			b.Instrs = append(b.Instrs, &ir.Instr{Op: ir.OpRet, Dst: -1, A: ir.ConstInt(0)})
		case 1: // jmp
			t := f.Blocks[rng.Intn(nBlocks)]
			b.Instrs = append(b.Instrs, &ir.Instr{Op: ir.OpJmp, Dst: -1, Then: t})
		default: // br
			t1 := f.Blocks[rng.Intn(nBlocks)]
			t2 := f.Blocks[rng.Intn(nBlocks)]
			b.Instrs = append(b.Instrs, &ir.Instr{Op: ir.OpBr, Dst: -1, A: ir.Reg(0), Then: t1, Else: t2})
		}
		_ = i
	}
	// Fill preds like Program.Finalize does.
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			s.Preds = append(s.Preds, b)
		}
	}
	return f
}

// reachable computes reachability from entry.
func reachable(f *ir.Func) map[*ir.Block]bool {
	seen := make(map[*ir.Block]bool)
	var visit func(b *ir.Block)
	visit = func(b *ir.Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs() {
			visit(s)
		}
	}
	visit(f.Entry())
	return seen
}

// dominatesBrute checks "a dom b" by exhaustive path enumeration: b is
// reachable from entry, and unreachable when a is removed.
func dominatesBrute(f *ir.Func, a, b *ir.Block) bool {
	seen := make(map[*ir.Block]bool)
	var visit func(x *ir.Block) bool
	visit = func(x *ir.Block) bool {
		if x == b {
			return true
		}
		if x == a || seen[x] {
			return false
		}
		seen[x] = true
		for _, s := range x.Succs() {
			if visit(s) {
				return true
			}
		}
		return false
	}
	if a == b {
		return true
	}
	return !visit(f.Entry())
}

// Property: on random CFGs, the iterative dominator tree agrees with
// brute-force path-based dominance for all reachable block pairs.
func TestDominatorsMatchBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fn := randomCFG(rng, 2+rng.Intn(7))
		reach := reachable(fn)
		d := Dominators(fn)
		for _, a := range fn.Blocks {
			for _, b := range fn.Blocks {
				if !reach[a] || !reach[b] {
					continue
				}
				want := dominatesBrute(fn, a, b)
				got := d.Dominates(a, b)
				if got != want {
					t.Logf("seed %d: dom(bb%d, bb%d) = %v, want %v", seed, a.ID, b.ID, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: ipdom is a strict postdominator of its block on random CFGs.
func TestIPDomIsPostDominator(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fn := randomCFG(rng, 2+rng.Intn(7))
		reach := reachable(fn)
		pd := PostDominators(fn)
		for _, b := range fn.Blocks {
			if !reach[b] {
				continue
			}
			ip := pd.IPDom(b)
			if ip == nil {
				continue
			}
			if ip == b {
				return false
			}
			if !pd.PostDominates(ip, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
