package cfg

import (
	"testing"

	"repro/internal/ir"
)

const threaded = `
global int shared = 0;
int helper(int x) { return x + 1; }
void worker(int arg) {
	shared = helper(arg);
}
int main() {
	int t1 = spawn(worker, 1);
	int t2 = spawn(worker, 2);
	shared = helper(0);
	join(t1);
	join(t2);
	return shared;
}`

func TestTICFGEdges(t *testing.T) {
	p := compile(t, threaded)
	g := BuildTICFG(p)

	worker := p.FuncByName["worker"]
	helper := p.FuncByName["helper"]

	if len(g.SpawnEdges) != 2 {
		t.Fatalf("spawn edges: got %d, want 2", len(g.SpawnEdges))
	}
	for _, f := range g.SpawnEdges {
		if f != worker {
			t.Errorf("spawn edge target: %s", f.Name)
		}
	}
	if len(g.CallEdges) != 2 { // helper called from worker and from main
		t.Errorf("call edges: got %d, want 2", len(g.CallEdges))
	}
	for _, f := range g.CallEdges {
		if f != helper {
			t.Errorf("call edge target: %s", f.Name)
		}
	}
	// Join edges overapproximate to all spawned routines.
	if len(g.JoinEdges) != 2 {
		t.Fatalf("join edges: got %d, want 2", len(g.JoinEdges))
	}
	for _, fs := range g.JoinEdges {
		if len(fs) == 0 || fs[0] != worker {
			t.Errorf("join edge targets: %v", fs)
		}
	}
	// worker has 2 callsites (the spawns); helper has 2 (the calls).
	if len(g.Callsites[worker]) != 2 {
		t.Errorf("worker callsites: %v", g.Callsites[worker])
	}
	if len(g.Callsites[helper]) != 2 {
		t.Errorf("helper callsites: %v", g.Callsites[helper])
	}
}

func TestRetAndArgValues(t *testing.T) {
	p := compile(t, threaded)
	g := BuildTICFG(p)
	helper := p.FuncByName["helper"]
	worker := p.FuncByName["worker"]

	rets := g.RetValues(helper)
	if len(rets) != 1 || rets[0].Kind != ir.ValReg {
		t.Errorf("helper ret values: %v", rets)
	}

	// worker's parameter 0 receives the spawn payloads 1 and 2.
	args := g.ArgValues(worker, 0)
	if len(args) != 2 {
		t.Fatalf("worker arg values: %v", args)
	}
	got := map[int64]bool{}
	for _, a := range args {
		if a.Val.Kind == ir.ValConst {
			got[a.Val.Int] = true
		}
	}
	if !got[1] || !got[2] {
		t.Errorf("spawn payloads: %v", got)
	}

	// helper's parameter 0 receives one const (0 from main) and one
	// register (arg from worker).
	hargs := g.ArgValues(helper, 0)
	if len(hargs) != 2 {
		t.Fatalf("helper arg values: %v", hargs)
	}
}

func TestDomTreesBuiltPerFunction(t *testing.T) {
	p := compile(t, threaded)
	g := BuildTICFG(p)
	for _, f := range p.Funcs {
		if g.Dom[f] == nil || g.PDom[f] == nil {
			t.Errorf("missing dominance trees for %s", f.Name)
		}
	}
}

func TestTICFGStringSmoke(t *testing.T) {
	p := compile(t, threaded)
	g := BuildTICFG(p)
	if s := g.String(); len(s) == 0 {
		t.Error("empty TICFG dump")
	}
}
