// Command gist-bench regenerates the paper's evaluation: every table and
// figure of §5 (plus the §4 and §5.3 in-text measurements) against the
// 11-bug suite.
//
// Usage:
//
//	gist-bench -exp all
//	gist-bench -exp table1
//	gist-bench -exp fig11 -bugs pbzip2,apache-1 -runs 6
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bugs"
	"repro/internal/experiments"
	"repro/internal/telemetry"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table1, sketches, fig9, fig10, fig11, fig12, fig13, breakdown, swpt, extpt, chaos, perf, sched, shard, crashloop, service, vm, ingest, overload, all")
		bugList  = flag.String("bugs", "", "comma-separated bug subset (default: all 12)")
		runs     = flag.Int("runs", 0, "runs per measurement point (0 = experiment default)")
		workers  = flag.Int("workers", 0, "fan-out width for suite sweeps and the fleet inside each diagnosis (0 = GOMAXPROCS); results are byte-identical for any value")
		jsonPath = flag.String("json", "", "with -exp perf, sched, shard, crashloop, service, vm, ingest, or overload: write the results to this JSON file (e.g. BENCH_fleet.json)")
		agents   = flag.Int("agents", 1000, "with -exp service: total simulated agent count across all tenants")
		dedup    = flag.Int("dedup", 20, "with -exp ingest: reports submitted per distinct failure signature (the dedup ratio; min 10)")

		traceOut    = flag.String("trace-out", "", "write a JSONL phase-span event log to this file")
		metricsJSON = flag.String("metrics-json", "", "write a metrics snapshot to this file on exit")
		validate    = flag.String("validate", "", "validate an existing BENCH JSON file (perf, sched, shard, crashloop, service, vm, ingest, or overload) against the observability schema, then exit")
	)
	flag.Parse()

	fatalf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "gist-bench: "+format+"\n", args...)
		os.Exit(2)
	}
	if *workers < 0 {
		fatalf("-workers %d is negative (0 means GOMAXPROCS)", *workers)
	}
	if *runs < 0 {
		fatalf("-runs %d is negative (0 means experiment default)", *runs)
	}
	if *agents < 1 {
		fatalf("-agents %d must be at least 1", *agents)
	}
	if *dedup < 10 {
		fatalf("-dedup %d must be at least 10 (the experiment proves a >= 10:1 dedup ratio)", *dedup)
	}

	if *validate != "" {
		data, err := os.ReadFile(*validate)
		if err != nil {
			fatalf("%v", err)
		}
		if err := experiments.ValidateBenchJSON(data); err != nil {
			fmt.Fprintf(os.Stderr, "gist-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s: ok\n", *validate)
		return
	}

	experiments.Workers = *workers

	// Telemetry observes the experiments; results are byte-identical
	// with or without it. The perf experiment manages its own per-pass
	// tracers and ignores this hook.
	var tel *telemetry.Tracer
	if *traceOut != "" {
		t, closeTrace, err := telemetry.OpenTrace(*traceOut)
		if err != nil {
			fatalf("%v", err)
		}
		tel = t
		defer func() {
			if err := closeTrace(); err != nil {
				fmt.Fprintf(os.Stderr, "gist-bench: trace-out: %v\n", err)
			}
		}()
	} else if *metricsJSON != "" {
		tel = telemetry.New()
	}
	experiments.Telemetry = tel
	if *metricsJSON != "" {
		defer func() {
			if err := tel.WriteMetricsJSON(*metricsJSON); err != nil {
				fmt.Fprintf(os.Stderr, "gist-bench: metrics-json: %v\n", err)
			}
		}()
	}

	suite := bugs.All()
	if *bugList != "" {
		suite = experiments.Suite(strings.Split(*bugList, ",")...)
		if len(suite) == 0 {
			fmt.Fprintf(os.Stderr, "gist-bench: no known bugs in %q\n", *bugList)
			os.Exit(2)
		}
	}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("==== %s ====\n\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "gist-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("table1", func() error {
		rows, err := experiments.Table1(suite)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderTable1(rows))
		return nil
	})
	run("sketches", func() error {
		figs, err := experiments.SketchFigures()
		if err != nil {
			return err
		}
		for _, name := range []string{"pbzip2", "curl", "apache-3"} {
			fmt.Printf("---- %s ----\n%s\n", name, figs[name])
		}
		return nil
	})
	run("fig9", func() error {
		rows, err := experiments.Fig9(suite)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig9(rows))
		return nil
	})
	run("fig10", func() error {
		rows, err := experiments.Fig10(suite)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig10(rows))
		return nil
	})
	run("fig11", func() error {
		points, err := experiments.Fig11(suite, nil, *runs)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig11(points))
		return nil
	})
	run("fig12", func() error {
		rows, err := experiments.Fig12(suite, nil)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig12(rows))
		return nil
	})
	run("fig13", func() error {
		rows, err := experiments.Fig13(suite, *runs)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig13(rows))
		return nil
	})
	run("breakdown", func() error {
		rows, err := experiments.Breakdown(suite, *runs)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderBreakdown(rows))
		return nil
	})
	run("extpt", func() error {
		rows, err := experiments.ExtendedPT(suite)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderExtPT(rows))
		return nil
	})
	run("swpt", func() error {
		fmt.Print(experiments.RenderSWPT(experiments.SoftwarePT(suite, *runs)))
		return nil
	})
	run("chaos", func() error {
		// Default to the three printed-sketch bugs; -bugs widens the sweep.
		cs := suite
		if *bugList == "" {
			cs = experiments.ChaosSuite()
		}
		fmt.Print(experiments.RenderChaos(experiments.Chaos(cs, nil)))
		return nil
	})
	// perf and sched re-diagnose the suite once per worker/width count,
	// so they run only when asked for by name, not as part of "all".
	// Both derive their measurement points from -workers the same way.
	widthList := func() []int {
		wl := []int{1, 2, 4, 8}
		if *workers == 1 {
			wl = []int{1}
		} else if *workers > 0 {
			wl = []int{1, *workers}
		}
		return wl
	}
	writeBench := func(name string, write func(string) error) {
		if *jsonPath == "" {
			return
		}
		if err := write(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "gist-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *jsonPath)
	}
	if *exp == "perf" {
		fmt.Printf("==== perf ====\n\n")
		res, err := experiments.Perf(suite, widthList())
		if err != nil {
			fmt.Fprintf(os.Stderr, "gist-bench: perf: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(experiments.RenderPerf(res))
		writeBench("perf", res.WriteJSON)
	}
	if *exp == "sched" {
		fmt.Printf("==== sched ====\n\n")
		res, err := experiments.Sched(suite, widthList())
		if err != nil {
			fmt.Fprintf(os.Stderr, "gist-bench: sched: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(experiments.RenderSched(res))
		writeBench("sched", res.WriteJSON)
	}
	if *exp == "shard" {
		fmt.Printf("==== shard ====\n\n")
		procs := []int{1, 2, 4}
		if *workers == 1 {
			procs = []int{1}
		} else if *workers > 0 {
			procs = []int{1, *workers}
		}
		res, err := experiments.Shard(suite, procs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gist-bench: shard: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(experiments.RenderShard(res))
		writeBench("shard", res.WriteJSON)
	}
	if *exp == "crashloop" {
		fmt.Printf("==== crashloop ====\n\n")
		// Default to the chaos trio; -bugs widens (or narrows) the sweep.
		cs := suite
		if *bugList == "" {
			cs = experiments.ChaosSuite()
		}
		res, err := experiments.Crashloop(cs, nil, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gist-bench: crashloop: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(experiments.RenderCrashloop(res))
		writeBench("crashloop", res.WriteJSON)
	}
	if *exp == "vm" {
		fmt.Printf("==== vm ====\n\n")
		// Default to the three printed-sketch bugs; -bugs overrides.
		cs := suite
		if *bugList == "" {
			cs = experiments.VMSuite()
		}
		res, err := experiments.VMPerf(cs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gist-bench: vm: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(experiments.RenderVM(res))
		writeBench("vm", res.WriteJSON)
	}
	if *exp == "ingest" {
		fmt.Printf("==== ingest ====\n\n")
		names := make([]string, len(suite))
		for i, b := range suite {
			names[i] = b.Name
		}
		res, err := experiments.IngestLoad(names, *dedup, 2)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gist-bench: ingest: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(experiments.RenderIngest(res))
		writeBench("ingest", res.WriteJSON)
	}
	if *exp == "service" {
		fmt.Printf("==== service ====\n\n")
		// One cheap-to-diagnose bug keeps the experiment about the wire,
		// not the diagnosis; -bugs overrides.
		bug := "deadlock"
		if *bugList != "" {
			bug = strings.Split(*bugList, ",")[0]
		}
		perTenant := 20
		if *agents < perTenant {
			perTenant = *agents
		}
		tenants := *agents / perTenant
		res, err := experiments.ServiceLoad(bug, tenants, perTenant, 0.05)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gist-bench: service: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(experiments.RenderService(res))
		writeBench("service", res.WriteJSON)
	}
	if *exp == "overload" {
		fmt.Printf("==== overload ====\n\n")
		// One cheap-to-diagnose bug keeps the experiment about admission
		// control, not the diagnosis; -bugs overrides.
		opts := experiments.OverloadOptions{}
		if *bugList != "" {
			opts.Bug = strings.Split(*bugList, ",")[0]
		}
		res, err := experiments.Overload(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gist-bench: overload: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(experiments.RenderOverload(res))
		writeBench("overload", res.WriteJSON)
	}
}
