// Command minic compiles and runs a MiniC source file on the VM — the
// standalone front door to the compilation-and-execution substrate.
//
// Usage:
//
//	minic prog.mc
//	minic -seed 7 -preempt 3 -ints 1,2,3 -strs "{}{" prog.mc
//	minic -dump-ir prog.mc
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/ir"
	"repro/internal/vm"
)

func main() {
	var (
		seed    = flag.Int64("seed", 1, "scheduler seed")
		preempt = flag.Int("preempt", 5, "mean instructions between preemptions")
		maxStep = flag.Int64("max-steps", 2_000_000, "step limit before a hang is declared")
		ints    = flag.String("ints", "", "comma-separated integer workload (input(i))")
		strs    = flag.String("strs", "", "comma-separated string workload (input_str(i))")
		dumpIR  = flag.Bool("dump-ir", false, "print the IR instead of running")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minic [flags] file.mc")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "minic: %v\n", err)
		os.Exit(1)
	}
	prog, err := ir.Compile(flag.Arg(0), string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "minic: %v\n", err)
		os.Exit(1)
	}
	if *dumpIR {
		fmt.Print(prog.String())
		return
	}
	wl := vm.Workload{}
	if *ints != "" {
		for _, part := range strings.Split(*ints, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "minic: bad -ints value %q\n", part)
				os.Exit(2)
			}
			wl.Ints = append(wl.Ints, v)
		}
	}
	if *strs != "" {
		wl.Strs = strings.Split(*strs, ",")
	}
	out := vm.Run(prog, vm.Config{
		Seed:        *seed,
		PreemptMean: *preempt,
		MaxSteps:    *maxStep,
		Workload:    wl,
	})
	for _, line := range out.Prints {
		fmt.Println(line)
	}
	if out.Failed {
		fmt.Fprintf(os.Stderr, "minic: run failed after %d steps:\n%s", out.Steps, out.Report)
		os.Exit(1)
	}
	fmt.Printf("exit %d (%d steps)\n", out.Exit, out.Steps)
}
