// Command gist runs the failure-sketching pipeline on one of the bugs in
// the evaluation suite and prints the resulting failure sketch, exactly
// the artifact the paper's Figs. 1, 7 and 8 show.
//
// Usage:
//
//	gist -list
//	gist -bug pbzip2
//	gist -bug apache-3 -sigma0 4 -features cf,df -v
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/bugs"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/telemetry"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list the bugs in the suite")
		bugName  = flag.String("bug", "", "bug to diagnose (see -list)")
		sigma0   = flag.Int("sigma0", 2, "initial tracked-slice size in statements")
		features = flag.String("features", "static,cf,df", "comma-separated tracking features: static,cf,df,extpt")
		verbose  = flag.Bool("v", false, "print per-iteration details")
		noOracle = flag.Bool("full", false, "run AsT to completion instead of stopping at the developer oracle")
		asJSON   = flag.Bool("json", false, "emit the sketch as JSON instead of text")

		workers   = flag.Int("workers", 0, "fleet worker-pool width (0 = GOMAXPROCS); the diagnosis is byte-identical for any value")
		maxIters  = flag.Int("max-iters", 0, "cap on AsT iterations this process runs (0 = library default); with -checkpoint-dir the boundary state is checkpointed so a later -resume continues")
		ckptDir   = flag.String("checkpoint-dir", "", "write a campaign checkpoint to this directory after every AsT iteration; the diagnosis is byte-identical with or without checkpointing")
		resume    = flag.Bool("resume", false, "restore the campaign from -checkpoint-dir instead of starting from discovery, continuing the diagnosis byte-for-byte")
		faultRate = flag.Float64("fault-rate", 0, "composite fleet fault rate in [0,1] spread across all fault classes (0 = reliable fleet)")
		faultSeed = flag.Int64("fault-seed", 1, "fault-injector seed (diagnoses are deterministic per seed)")
		deadline  = flag.Int64("run-deadline", 0, "per-run step deadline applied by the server (0 = off)")

		traceOut    = flag.String("trace-out", "", "write a JSONL phase-span event log to this file")
		metricsJSON = flag.String("metrics-json", "", "write a metrics snapshot (phases, counters, runtime stats) to this file on exit")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060) and sample runtime stats periodically")
	)
	flag.Parse()

	// Out-of-range flags used to flow unvalidated into the fault
	// injector and the worker pool; reject them before any work starts.
	fatalf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "gist: "+format+"\n", args...)
		os.Exit(2)
	}
	if *faultRate < 0 || *faultRate > 1 {
		fatalf("-fault-rate %g outside [0,1]", *faultRate)
	}
	if *workers < 0 {
		fatalf("-workers %d is negative (0 means GOMAXPROCS)", *workers)
	}
	if *sigma0 < 1 {
		fatalf("-sigma0 %d must be at least 1", *sigma0)
	}
	if *deadline < 0 {
		fatalf("-run-deadline %d is negative (0 means off)", *deadline)
	}
	if *maxIters < 0 {
		fatalf("-max-iters %d is negative (0 means library default)", *maxIters)
	}
	if *resume && *ckptDir == "" {
		fatalf("-resume needs -checkpoint-dir to load the checkpoint from")
	}

	if *list {
		fmt.Println("bug            software      class")
		for _, b := range bugs.All() {
			fmt.Printf("%-14s %-13s %s\n", b.Name, b.Software, b.Class)
		}
		return
	}
	b := bugs.ByName(*bugName)
	if b == nil {
		fmt.Fprintf(os.Stderr, "gist: unknown bug %q (use -list)\n", *bugName)
		os.Exit(2)
	}

	feats := parseFeatures(*features)
	cfg := b.GistConfig()
	cfg.Features = feats
	cfg.Sigma0 = *sigma0
	cfg.Workers = *workers
	if !*noOracle {
		cfg.StopWhen = experiments.DeveloperOracle(b)
	}
	if *faultRate > 0 {
		cfg.Faults = faults.Composite(*faultSeed, *faultRate)
	}
	cfg.RunDeadlineSteps = *deadline
	cfg.MaxIters = *maxIters

	// Telemetry observes the pipeline; the diagnosis is byte-identical
	// with or without it.
	var tel *telemetry.Tracer
	if *traceOut != "" {
		t, closeTrace, err := telemetry.OpenTrace(*traceOut)
		if err != nil {
			fatalf("%v", err)
		}
		tel = t
		defer func() {
			if err := closeTrace(); err != nil {
				fmt.Fprintf(os.Stderr, "gist: trace-out: %v\n", err)
			}
		}()
	} else if *metricsJSON != "" || *pprofAddr != "" {
		tel = telemetry.New()
	}
	cfg.Telemetry = tel

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "gist: pprof: %v\n", err)
			}
		}()
		stop := tel.StartRuntimeSampler(time.Second)
		defer stop()
	}
	// Flag-gated exit hook, not a defer: the -json path exits through
	// os.Exit on marshal errors, and the snapshot should land either way.
	writeMetrics := func() {
		if *metricsJSON == "" {
			return
		}
		if err := tel.WriteMetricsJSON(*metricsJSON); err != nil {
			fmt.Fprintf(os.Stderr, "gist: metrics-json: %v\n", err)
		}
	}

	res, err := diagnose(cfg, b.Name, *ckptDir, *resume, fatalf)
	writeMetrics()
	if err != nil {
		fmt.Fprintf(os.Stderr, "gist: %v\n", err)
		if res == nil || res.Sketch == nil {
			os.Exit(1)
		}
	}

	if *asJSON {
		data, err := res.Sketch.MarshalIndentJSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "gist: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(data))
		return
	}

	fmt.Printf("Failure report: %s\n", res.Report.Kind)
	fmt.Printf("Static slice: %d statements (%d IR instructions)\n",
		res.Slice.LineCount(), res.Slice.InstrCount())
	fmt.Printf("Failure recurrences used: %d across %d production runs (first failure after %d runs)\n",
		res.FailureRecurrences, res.TotalRuns, res.DiscoveryRuns)
	fmt.Printf("Average client overhead: %.2f%%\n", res.AvgOverheadPct)
	if res.Health.Degraded() {
		fmt.Printf("Fleet health: %s\n", res.Health)
	}
	fmt.Println()

	if *verbose {
		for i, it := range res.Iters {
			fmt.Printf("iteration %d: sigma=%d tracked=%d instrs, %d failing / %d successful runs, overhead %.2f%%, +%d refined\n",
				i+1, it.Sigma, it.TrackedInstrs, it.Failing, it.Successful, it.OverheadPct, len(it.AddedInstrs))
			if it.Health.Degraded() {
				fmt.Printf("             health: %s\n", it.Health)
			}
		}
		fmt.Println()
	}

	fmt.Println(res.Sketch.Render())

	rel, ord, overall := res.Sketch.Accuracy(b.Ideal())
	fmt.Printf("Accuracy vs. hand-written ideal sketch: relevance %.1f%%, ordering %.1f%%, overall %.1f%%\n",
		rel, ord, overall)
	fmt.Printf("\nHow developers fixed it: %s\n", b.Fix)
}

// diagnose runs the pipeline, stepping the campaign manually when
// checkpointing is requested so a checkpoint lands after every AsT
// iteration boundary. Checkpoints are written atomically (temp file +
// rename), so a kill mid-write can never leave a truncated checkpoint.
func diagnose(cfg core.Config, bugName, ckptDir string, resume bool, fatalf func(string, ...any)) (*core.Result, error) {
	if ckptDir == "" {
		return core.Run(cfg)
	}
	path := filepath.Join(ckptDir, bugName+".ckpt.json")
	var camp *core.Campaign
	if resume {
		data, err := os.ReadFile(path)
		if err != nil {
			fatalf("-resume: %v", err)
		}
		snap, err := core.DecodeCampaignSnapshot(data)
		if err != nil {
			fatalf("-resume: %v", err)
		}
		camp, err = core.RestoreCampaign(cfg, snap)
		if err != nil {
			fatalf("-resume: %v", err)
		}
	} else {
		report, disc, err := core.FirstFailure(cfg)
		if err != nil {
			return nil, err
		}
		camp, err = core.NewCampaign(cfg, report, disc)
		if err != nil {
			fatalf("%v", err)
		}
	}
	if err := os.MkdirAll(ckptDir, 0o755); err != nil {
		fatalf("-checkpoint-dir: %v", err)
	}
	writeCkpt := func() {
		snap, err := camp.Snapshot()
		if err != nil {
			fatalf("checkpoint: %v", err)
		}
		data, err := snap.Encode()
		if err != nil {
			fatalf("checkpoint: %v", err)
		}
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, data, 0o644); err != nil {
			fatalf("checkpoint: %v", err)
		}
		if err := os.Rename(tmp, path); err != nil {
			fatalf("checkpoint: %v", err)
		}
	}
	for {
		done, err := camp.Step()
		writeCkpt()
		if done {
			res, _ := camp.Result()
			return res, err
		}
	}
}

func parseFeatures(s string) core.Features {
	var f core.Features
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "static":
			f.Static = true
		case "cf", "controlflow", "control-flow":
			f.ControlFlow = true
		case "df", "dataflow", "data-flow":
			f.DataFlow = true
		case "extpt", "ptwrite", "extended-pt":
			f.ControlFlow = true
			f.DataFlow = true
			f.ExtendedPT = true
		case "":
		default:
			fmt.Fprintf(os.Stderr, "gist: unknown feature %q\n", part)
			os.Exit(2)
		}
	}
	return f
}
