// Command gist runs the failure-sketching pipeline on one of the bugs in
// the evaluation suite and prints the resulting failure sketch, exactly
// the artifact the paper's Figs. 1, 7 and 8 show.
//
// Usage:
//
//	gist -list
//	gist -bug pbzip2
//	gist -bug apache-3 -sigma0 4 -features cf,df -v
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/bugs"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/service"
	"repro/internal/service/agent"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/supervise"
	"repro/internal/telemetry"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list the bugs in the suite")
		bugName  = flag.String("bug", "", "bug to diagnose (see -list)")
		sigma0   = flag.Int("sigma0", 2, "initial tracked-slice size in statements")
		features = flag.String("features", "static,cf,df", "comma-separated tracking features: static,cf,df,extpt")
		verbose  = flag.Bool("v", false, "print per-iteration details")
		noOracle = flag.Bool("full", false, "run AsT to completion instead of stopping at the developer oracle")
		asJSON   = flag.Bool("json", false, "emit the sketch as JSON instead of text")

		workers    = flag.Int("workers", 0, "fleet worker-pool width (0 = GOMAXPROCS); the diagnosis is byte-identical for any value")
		engineName = flag.String("engine", "bytecode", "execution engine for production runs: bytecode or interp; the diagnosis is byte-identical on either")
		maxIters   = flag.Int("max-iters", 0, "cap on AsT iterations this process runs (0 = library default); with -checkpoint-dir the boundary state is checkpointed so a later -resume continues")
		ckptDir    = flag.String("checkpoint-dir", "", "durably checkpoint the campaign to this directory after every AsT iteration (checksummed, generation-numbered); the diagnosis is byte-identical with or without checkpointing")
		resume     = flag.Bool("resume", false, "restore the campaign from the newest valid checkpoint generation in -checkpoint-dir instead of starting from discovery, continuing the diagnosis byte-for-byte")
		supervised = flag.Bool("supervise", false, "run under the self-healing supervisor: panic recovery, per-step watchdog, restart from the last good checkpoint, circuit breaker")
		ckptFsync  = flag.Bool("ckpt-fsync", true, "fsync checkpoint files and their directory before publishing (false trades durability of the newest generation for speed)")
		iterDelay  = flag.Duration("iter-delay", 0, "sleep this long between AsT iteration boundaries (widens the kill window for crash-recovery testing)")
		faultRate  = flag.Float64("fault-rate", 0, "composite fleet fault rate in [0,1] spread across all fault classes (0 = reliable fleet)")
		faultSeed  = flag.Int64("fault-seed", 1, "fault-injector seed (diagnoses are deterministic per seed)")
		deadline   = flag.Int64("run-deadline", 0, "per-run step deadline applied by the server (0 = off)")

		traceOut    = flag.String("trace-out", "", "write a JSONL phase-span event log to this file")
		metricsJSON = flag.String("metrics-json", "", "write a metrics snapshot (phases, counters, runtime stats) to this file on exit")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060) and sample runtime stats periodically")

		serveMode   = flag.Bool("serve", false, "run the diagnosis service: accept failure reports, schedule campaigns, stream tracking plans to agents, collect traces, serve sketches")
		listen      = flag.String("listen", "127.0.0.1:8443", "with -serve: address to listen on (host:port)")
		stateDir    = flag.String("state-dir", "state", "with -serve: checkpoint root directory (one subdirectory per tenant)")
		lease       = flag.Duration("lease", 10*time.Second, "with -serve: task lease TTL before a silent agent's work is reassigned")
		pollTimeout = flag.Duration("poll-timeout", 5*time.Second, "with -serve: cap on how long an agent long-poll is held open")

		coordMode = flag.Bool("coordinator", false, "with -serve: run coordinator-only — place campaigns on the shard worker fleet sharing -state-dir instead of diagnosing in-process")
		shards    = flag.Int("shards", 1, "shard fleet size (with -serve -coordinator, or -worker)")
		workerID  = flag.Int("worker-id", 0, "with -worker: this worker's 1-based id in 1..-shards")

		ingestCacheBytes = flag.Int64("ingest-cache-bytes", 0, "with -serve: sketch LRU cache budget in bytes (0 = default 8 MiB); evicted sketches re-render from the checkpoint store on demand")
		ingestTaskTTL    = flag.Duration("ingest-task-ttl", 0, "with -serve: how long completed-task idempotency keys are retained for duplicate-upload detection (0 = default 4x lease)")
		ingestTaskCap    = flag.Int("ingest-task-cap", 0, "with -serve: max completed-task idempotency keys retained (0 = default 65536); live tasks are never evicted")

		tenantRPS    = flag.Float64("tenant-rps", 0, "with -serve: per-tenant submit rate limit in reports/sec, shed with 429 + Retry-After beyond it (0 = unlimited)")
		tenantBurst  = flag.Int("tenant-burst", 0, "with -serve: per-tenant token-bucket burst size (0 = default 2x -tenant-rps)")
		maxInflight  = flag.Int("max-inflight", 0, "with -serve: cap on concurrently running campaigns; novel launches beyond it queue up to -launch-budget (0 = uncapped)")
		launchBudget = flag.Int("launch-budget", 0, "with -serve: max novel launches queued behind -max-inflight before shedding with 429 (0 = default 4x max-inflight)")
		hedgeAfter   = flag.Duration("hedge-after", 0, "with -serve: speculatively re-dispatch a leased task running longer than max(this, observed p95); first valid upload wins (0 = hedging off)")
		drainWait    = flag.Duration("drain-wait", 30*time.Second, "with -serve: how long SIGINT/SIGTERM waits for in-flight campaigns to finish or checkpoint before exiting")
		subDeadline  = flag.Duration("deadline", 0, "with -submit: end-to-end diagnosis deadline propagated to the server and its agents (0 = none)")

		workerMode  = flag.Bool("worker", false, "run as a shard fleet worker: claim campaigns assigned under the shared -state-dir, drive them to completion, publish sketches")
		agentMode   = flag.Bool("agent", false, "run as an endpoint agent: long-poll -server for tracking tasks, execute runs, upload traces")
		serverURL   = flag.String("server", "", "with -agent or -submit: diagnosis server base URL, e.g. http://127.0.0.1:8443")
		tenant      = flag.String("tenant", "default", "tenant label (serve/agent/submit modes)")
		agentID     = flag.String("agent-id", "", "with -agent: agent identifier (default agent-<pid>)")
		agentPoll   = flag.Duration("agent-poll", 2*time.Second, "with -agent: long-poll wait per request")
		rpcDeadline = flag.Duration("rpc-deadline", 30*time.Second, "with -agent or -submit: per-RPC attempt deadline (must exceed -agent-poll)")

		submitMode = flag.Bool("submit", false, "submit -bug to -server, wait for the diagnosis, and print the sketch JSON (byte-identical to a local -full -json run)")
		tfRate     = flag.Float64("transport-fault-rate", 0, "injected transport fault rate in [0,1]: drop/delay/duplicate/corrupt/disconnect at the codec boundary")
		tfSeed     = flag.Int64("transport-fault-seed", 1, "transport fault-injector seed (fault streams are deterministic per seed)")
	)
	flag.Parse()

	// Out-of-range flags used to flow unvalidated into the fault
	// injector and the worker pool; reject them before any work starts.
	fatalf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "gist: "+format+"\n", args...)
		os.Exit(2)
	}
	if *faultRate < 0 || *faultRate > 1 {
		fatalf("-fault-rate %g outside [0,1]", *faultRate)
	}
	engine, err := core.ParseEngine(*engineName)
	if err != nil {
		fatalf("-engine: %v", err)
	}
	if *workers < 0 {
		fatalf("-workers %d is negative (0 means GOMAXPROCS)", *workers)
	}
	if *sigma0 < 1 {
		fatalf("-sigma0 %d must be at least 1", *sigma0)
	}
	if *deadline < 0 {
		fatalf("-run-deadline %d is negative (0 means off)", *deadline)
	}
	if *maxIters < 0 {
		fatalf("-max-iters %d is negative (0 means library default)", *maxIters)
	}
	if *resume && *ckptDir == "" {
		fatalf("-resume needs -checkpoint-dir to load the checkpoint from")
	}
	if *iterDelay < 0 {
		fatalf("-iter-delay %v is negative", *iterDelay)
	}
	if *tfRate < 0 || *tfRate > 1 {
		fatalf("-transport-fault-rate %g outside [0,1]", *tfRate)
	}

	// Service modes. Each validates its flag set up front (exit 2 naming
	// the flag) and runs to completion without touching the in-process
	// diagnosis path below.
	modes := 0
	for _, on := range []bool{*serveMode, *agentMode, *submitMode, *workerMode} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fatalf("-serve, -agent, -submit, and -worker are mutually exclusive")
	}
	if *coordMode && !*serveMode {
		fatalf("-coordinator requires -serve")
	}
	if *serveMode {
		sf := service.ServeFlags{
			Listen:             *listen,
			StateDir:           *stateDir,
			Lease:              *lease,
			PollTimeout:        *pollTimeout,
			TransportFaultRate: *tfRate,
			IngestCacheBytes:   *ingestCacheBytes,
			IngestTaskTTL:      *ingestTaskTTL,
			IngestTaskCap:      *ingestTaskCap,
			TenantRPS:          *tenantRPS,
			TenantBurst:        *tenantBurst,
			MaxInflight:        *maxInflight,
			LaunchBudget:       *launchBudget,
			HedgeAfter:         *hedgeAfter,
		}
		if err := sf.Validate(); err != nil {
			fatalf("%v", err)
		}
		if *drainWait < 0 {
			fatalf("-drain-wait %v is negative", *drainWait)
		}
		var fleet *shard.Flags
		if *coordMode {
			wf := shard.Flags{Shards: *shards, StateDir: *stateDir, Lease: *lease}
			if err := wf.Validate(); err != nil {
				fatalf("%v", err)
			}
			fleet = &wf
		}
		runServe(sf, fleet, *ckptFsync, *drainWait, fatalf)
		return
	}
	if *workerMode {
		wf := shard.Flags{
			Shards:   *shards,
			WorkerID: *workerID,
			Worker:   true,
			StateDir: *stateDir,
			Lease:    *lease,
		}
		if err := wf.Validate(); err != nil {
			fatalf("%v", err)
		}
		runWorker(wf, *workers, *ckptFsync, *iterDelay, fatalf)
		return
	}
	if *agentMode {
		id := *agentID
		if id == "" {
			id = fmt.Sprintf("agent-%d", os.Getpid())
		}
		af := service.AgentFlags{
			Server:             *serverURL,
			Tenant:             *tenant,
			AgentID:            id,
			AgentPoll:          *agentPoll,
			RPCDeadline:        *rpcDeadline,
			TransportFaultRate: *tfRate,
		}
		if err := af.Validate(); err != nil {
			fatalf("%v", err)
		}
		runAgent(af, *tfSeed, fatalf)
		return
	}
	if *submitMode {
		af := service.AgentFlags{
			Server:             *serverURL,
			Tenant:             *tenant,
			AgentID:            "submitter",
			AgentPoll:          *agentPoll,
			RPCDeadline:        *rpcDeadline,
			TransportFaultRate: *tfRate,
		}
		if err := af.Validate(); err != nil {
			fatalf("%v", err)
		}
		if bugs.ByName(*bugName) == nil {
			fatalf("unknown bug %q (use -list)", *bugName)
		}
		if *subDeadline < 0 {
			fatalf("-deadline %v is negative (0 means none)", *subDeadline)
		}
		runSubmit(af, *bugName, *tfSeed, *subDeadline)
		return
	}

	if *list {
		fmt.Println("bug            software      class")
		for _, b := range bugs.All() {
			fmt.Printf("%-14s %-13s %s\n", b.Name, b.Software, b.Class)
		}
		return
	}
	b := bugs.ByName(*bugName)
	if b == nil {
		fmt.Fprintf(os.Stderr, "gist: unknown bug %q (use -list)\n", *bugName)
		os.Exit(2)
	}

	feats := parseFeatures(*features)
	cfg := b.GistConfig()
	cfg.Features = feats
	cfg.Sigma0 = *sigma0
	cfg.Workers = *workers
	if !*noOracle {
		cfg.StopWhen = experiments.DeveloperOracle(b)
	}
	if *faultRate > 0 {
		cfg.Faults = faults.Composite(*faultSeed, *faultRate)
	}
	cfg.RunDeadlineSteps = *deadline
	cfg.MaxIters = *maxIters
	cfg.Engine = engine

	// Telemetry observes the pipeline; the diagnosis is byte-identical
	// with or without it.
	var tel *telemetry.Tracer
	if *traceOut != "" {
		t, closeTrace, err := telemetry.OpenTrace(*traceOut)
		if err != nil {
			fatalf("%v", err)
		}
		tel = t
		defer func() {
			if err := closeTrace(); err != nil {
				fmt.Fprintf(os.Stderr, "gist: trace-out: %v\n", err)
			}
		}()
	} else if *metricsJSON != "" || *pprofAddr != "" {
		tel = telemetry.New()
	}
	cfg.Telemetry = tel

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "gist: pprof: %v\n", err)
			}
		}()
		stop := tel.StartRuntimeSampler(time.Second)
		defer stop()
	}
	// Flag-gated exit hook, not a defer: the -json path exits through
	// os.Exit on marshal errors, and the snapshot should land either way.
	writeMetrics := func() {
		if *metricsJSON == "" {
			return
		}
		if err := tel.WriteMetricsJSON(*metricsJSON); err != nil {
			fmt.Fprintf(os.Stderr, "gist: metrics-json: %v\n", err)
		}
	}

	res, err, drained := diagnose(cfg, b.Name, runOpts{
		ckptDir:   *ckptDir,
		resume:    *resume,
		supervise: *supervised,
		fsync:     *ckptFsync,
		iterDelay: *iterDelay,
		tel:       tel,
	}, fatalf)
	writeMetrics()
	if drained {
		fmt.Fprintln(os.Stderr, "gist: drained: campaign checkpointed; continue with -resume")
		os.Exit(3)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gist: %v\n", err)
		if res == nil || res.Sketch == nil {
			os.Exit(1)
		}
	}

	if *asJSON {
		data, err := res.Sketch.MarshalIndentJSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "gist: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(data))
		return
	}

	fmt.Printf("Failure report: %s\n", res.Report.Kind)
	fmt.Printf("Static slice: %d statements (%d IR instructions)\n",
		res.Slice.LineCount(), res.Slice.InstrCount())
	fmt.Printf("Failure recurrences used: %d across %d production runs (first failure after %d runs)\n",
		res.FailureRecurrences, res.TotalRuns, res.DiscoveryRuns)
	fmt.Printf("Average client overhead: %.2f%%\n", res.AvgOverheadPct)
	if res.Health.Degraded() {
		fmt.Printf("Fleet health: %s\n", res.Health)
	}
	fmt.Println()

	if *verbose {
		for i, it := range res.Iters {
			fmt.Printf("iteration %d: sigma=%d tracked=%d instrs, %d failing / %d successful runs, overhead %.2f%%, +%d refined\n",
				i+1, it.Sigma, it.TrackedInstrs, it.Failing, it.Successful, it.OverheadPct, len(it.AddedInstrs))
			if it.Health.Degraded() {
				fmt.Printf("             health: %s\n", it.Health)
			}
		}
		fmt.Println()
	}

	fmt.Println(res.Sketch.Render())

	rel, ord, overall := res.Sketch.Accuracy(b.Ideal())
	fmt.Printf("Accuracy vs. hand-written ideal sketch: relevance %.1f%%, ordering %.1f%%, overall %.1f%%\n",
		rel, ord, overall)
	fmt.Printf("\nHow developers fixed it: %s\n", b.Fix)
}

// runServe runs the diagnosis service until SIGINT/SIGTERM. Checkpoints
// land on the real filesystem under -state-dir (one subdirectory per
// tenant), so a restarted server resumes in-flight campaigns from their
// last durable generation.
//
// Shutdown mirrors the -supervise drain contract: the first signal
// stops admissions (new submits shed with 429) and asks every live
// campaign to checkpoint at its next iteration boundary, while the
// listener stays open so in-flight agent uploads land; only once the
// campaigns have unwound — or -drain-wait expires — does the listener
// close. Exit 3 means resumable work was checkpointed; a restart with
// the same -state-dir continues it byte-identically.
func runServe(f service.ServeFlags, fleet *shard.Flags, fsync bool, drainWait time.Duration, fatalf func(string, ...any)) {
	opts := service.Options{
		Backend:          store.DirBackend{},
		StateRoot:        f.StateDir,
		LeaseTTL:         f.Lease,
		PollTimeout:      f.PollTimeout,
		NoFsync:          !fsync,
		SketchCacheBytes: f.IngestCacheBytes,
		DoneTaskTTL:      f.IngestTaskTTL,
		MaxDoneTasks:     f.IngestTaskCap,
		TenantRPS:        f.TenantRPS,
		TenantBurst:      f.TenantBurst,
		MaxInflight:      f.MaxInflight,
		LaunchBudget:     f.LaunchBudget,
		HedgeAfter:       f.HedgeAfter,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "gist: serve: "+format+"\n", args...)
		},
	}
	if fleet != nil {
		coord, err := shard.NewCoordinator(store.DirBackend{}, fleet.StateDir, fleet.Shards, !fsync)
		if err != nil {
			fatalf("-coordinator: %v", err)
		}
		opts.Placer = coord
	}
	srv := service.NewServer(opts)
	ln, err := net.Listen("tcp", f.Listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gist: -listen: %v\n", err)
		os.Exit(2)
	}
	hs := &http.Server{Handler: srv.Handler()}
	type drainResult struct {
		n    int
		idle bool
	}
	drained := make(chan drainResult, 1)
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "gist: serve: draining (shedding new submits, checkpointing campaigns)")
		srv.BeginDrain()
		n, idle := srv.DrainWait(drainWait)
		if !idle {
			fmt.Fprintf(os.Stderr, "gist: serve: drain timed out after %v with campaigns still running\n", drainWait)
		}
		drained <- drainResult{n, idle}
		hs.Close()
	}()
	if fleet != nil {
		fmt.Fprintf(os.Stderr, "gist: coordinating %d shards over %s\n", fleet.Shards, fleet.StateDir)
	}
	fmt.Fprintf(os.Stderr, "gist: serving on %s (state in %s, lease %v)\n", ln.Addr(), f.StateDir, f.Lease)
	err = hs.Serve(ln)
	srv.Close()
	if err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "gist: serve: %v\n", err)
		os.Exit(1)
	}
	select {
	case r := <-drained:
		if !r.idle {
			// The drain timed out with campaigns still running; Close has
			// since unwound them to checkpoints, so recount now that the
			// campaign waitgroup is settled.
			r.n, _ = srv.DrainWait(time.Second)
		}
		if r.n > 0 || !r.idle {
			fmt.Fprintf(os.Stderr, "gist: serve: %d campaign(s) drained to checkpoints; restart with the same -state-dir to continue\n", r.n)
			os.Exit(3)
		}
	default:
	}
}

// runWorker drives one shard fleet worker until SIGINT/SIGTERM. The
// worker shares -state-dir with the coordinator and its sibling
// workers; a SIGKILLed worker's campaigns are taken over by survivors
// from the last durable checkpoint generation, byte-identically.
func runWorker(f shard.Flags, width int, fsync bool, iterDelay time.Duration, fatalf func(string, ...any)) {
	w, err := shard.NewWorker(shard.WorkerOptions{
		Backend:    store.DirBackend{},
		Root:       f.StateDir,
		ID:         fmt.Sprintf("w%d", f.WorkerID),
		Index:      f.WorkerID - 1,
		Shards:     f.Shards,
		LeaseTTL:   f.Lease,
		Width:      width,
		NoFsync:    !fsync,
		RoundDelay: iterDelay,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "gist: worker: "+format+"\n", args...)
		},
	})
	if err != nil {
		fatalf("-worker: %v", err)
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	fmt.Fprintf(os.Stderr, "gist: worker w%d of %d shard(s) over %s (lease %v)\n",
		f.WorkerID, f.Shards, f.StateDir, f.Lease)
	if err := w.Run(ctx, 0); err != nil && ctx.Err() == nil {
		fmt.Fprintf(os.Stderr, "gist: worker: %v\n", err)
		os.Exit(1)
	}
	st := w.Stats()
	fmt.Fprintf(os.Stderr, "gist: worker w%d: %d campaign(s) (%d finished, %d resumed, %d takeovers, %d lost leases), %d runs\n",
		f.WorkerID, st.Campaigns, st.Finished, st.Resumed, st.Takeovers, st.LostLeases, st.Runs)
}

// runAgent serves tasks until SIGINT/SIGTERM.
func runAgent(f service.AgentFlags, tfSeed int64, fatalf func(string, ...any)) {
	cfg := agent.Config{
		Server:      f.Server,
		Tenant:      f.Tenant,
		ID:          f.AgentID,
		Poll:        f.AgentPoll,
		RPCDeadline: f.RPCDeadline,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "gist: agent: "+format+"\n", args...)
		},
	}
	if f.TransportFaultRate > 0 {
		cfg.Faults = faults.Transport(tfSeed, f.TransportFaultRate)
	}
	ag, err := agent.New(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	fmt.Fprintf(os.Stderr, "gist: agent %s polling %s as tenant %s\n", f.AgentID, f.Server, f.Tenant)
	if err := ag.Run(ctx); err != nil && ctx.Err() == nil {
		fmt.Fprintf(os.Stderr, "gist: agent: %v\n", err)
		os.Exit(1)
	}
}

// runSubmit submits one failure report, waits for the diagnosis, and
// prints the sketch JSON exactly as the server shipped it. The server
// runs campaigns to completion (no developer oracle), so the output is
// byte-identical to a local `gist -bug X -full -json` run.
func runSubmit(f service.AgentFlags, bug string, tfSeed int64, deadline time.Duration) {
	opts := service.ClientOptions{
		BaseURL:  f.Server,
		Tenant:   f.Tenant,
		Actor:    f.AgentID,
		Deadline: f.RPCDeadline,
	}
	if f.TransportFaultRate > 0 {
		opts.Faults = faults.Transport(tfSeed, f.TransportFaultRate)
	}
	cli := service.NewClient(opts)
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	die := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "gist: submit: "+format+"\n", args...)
		os.Exit(1)
	}
	if err := cli.Call(ctx, service.PathSubmit, &service.SubmitRequest{
		Tenant:     f.Tenant,
		Bug:        bug,
		DeadlineMs: deadline.Milliseconds(),
	}, nil); err != nil {
		die("%v", err)
	}
	var st service.StatusResponse
	for {
		if err := cli.Call(ctx, service.PathStatus, &service.StatusRequest{Tenant: f.Tenant, Bug: bug}, &st); err != nil {
			die("%v", err)
		}
		if st.State == service.StateDone || st.State == service.StateFailed {
			break
		}
		select {
		case <-ctx.Done():
			die("interrupted while %s", st.State)
		case <-time.After(500 * time.Millisecond):
		}
	}
	if st.State == service.StateFailed {
		die("diagnosis failed: %s", st.Err)
	}
	if st.LowConfidence {
		fmt.Fprintf(os.Stderr, "gist: submit: low-confidence sketch (degraded fleet, %d restarts)\n", st.Restarts)
	}
	var sk service.SketchResponse
	if err := cli.Call(ctx, service.PathSketch, &service.SketchRequest{Tenant: f.Tenant, Bug: bug}, &sk); err != nil {
		die("%v", err)
	}
	if !sk.Ready {
		die("campaign finished but no sketch is available")
	}
	fmt.Println(string(sk.Sketch))
}

// runOpts carries the durability and supervision knobs into diagnose.
type runOpts struct {
	ckptDir   string
	resume    bool
	supervise bool
	fsync     bool
	iterDelay time.Duration
	tel       *telemetry.Tracer
}

// diagnose runs the pipeline. With -checkpoint-dir the campaign steps
// through the durable checkpoint store: after every AsT iteration
// boundary the snapshot is framed (checksummed), written to a temp
// file, fsynced, renamed into place, and the directory fsynced — so a
// kill at any instant leaves either the previous generation or the new
// one, never a silently torn checkpoint. With -supervise the campaign
// additionally runs under the self-healing supervisor; SIGINT/SIGTERM
// drain the campaign to a checkpoint instead of killing it (exit 3).
func diagnose(cfg core.Config, bugName string, opts runOpts, fatalf func(string, ...any)) (*core.Result, error, bool) {
	if opts.ckptDir == "" && !opts.supervise && opts.iterDelay == 0 {
		res, err := core.Run(cfg)
		return res, err, false
	}

	var st *store.Store
	if opts.ckptDir != "" {
		var err error
		st, err = store.Open(opts.ckptDir, bugName, store.Options{
			NoFsync:   !opts.fsync,
			Telemetry: opts.tel,
			Label:     bugName,
		})
		if err != nil {
			fatalf("-checkpoint-dir: %v", err)
		}
		for _, q := range st.Quarantined() {
			fmt.Fprintf(os.Stderr, "gist: checkpoint quarantined: %s: %v\n", q.From, q.Reason)
		}
	}

	var camp *core.Campaign
	if opts.resume {
		camp = restoreFromStore(cfg, bugName, st, fatalf)
	} else {
		report, disc, err := core.FirstFailure(cfg)
		if err != nil {
			return nil, err, false
		}
		camp, err = core.NewCampaign(cfg, report, disc)
		if err != nil {
			fatalf("%v", err)
		}
	}

	// Drain on SIGINT/SIGTERM: the campaign is checkpointed at the next
	// iteration boundary and the process exits 3 instead of losing the
	// in-flight diagnosis.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	saveCkpt := func(c *core.Campaign) {
		if st == nil {
			return
		}
		snap, err := c.Snapshot()
		if err != nil {
			fatalf("checkpoint: %v", err)
		}
		data, err := snap.Encode()
		if err != nil {
			fatalf("checkpoint: %v", err)
		}
		if _, err := st.Save(data); err != nil {
			// The previous durable generation stands; the diagnosis
			// keeps running.
			fmt.Fprintf(os.Stderr, "gist: checkpoint: %v\n", err)
		}
	}

	if opts.supervise {
		sup := supervise.New(cfg.Workers, supervise.Config{Telemetry: opts.tel})
		slot, err := sup.Add(cfg, camp, st)
		if err != nil {
			fatalf("-supervise: %v", err)
		}
		if opts.iterDelay > 0 {
			delay := opts.iterDelay
			sup.SetStepFault(slot, func(int) supervise.StepFault {
				time.Sleep(delay)
				return supervise.StepNone
			})
		}
		go func() {
			<-sigCh
			sup.RequestDrain()
		}()
		out := sup.Run()[slot]
		if out.Drained {
			return nil, nil, true
		}
		if out.BreakerTripped {
			fmt.Fprintf(os.Stderr, "gist: supervisor circuit breaker tripped after %d restarts; serving the last checkpoint as a low-confidence diagnosis\n", out.Restarts)
		}
		return out.Result, out.Err, false
	}

	var drainReq atomic.Bool
	go func() {
		<-sigCh
		drainReq.Store(true)
	}()
	saveCkpt(camp) // enrollment boundary: even a step-zero kill can resume
	for {
		done, err := camp.Step()
		saveCkpt(camp)
		if done {
			res, _ := camp.Result()
			return res, err, false
		}
		if drainReq.Load() {
			return nil, nil, true
		}
		if opts.iterDelay > 0 {
			time.Sleep(opts.iterDelay)
		}
	}
}

// restoreFromStore loads the newest checkpoint generation that decodes,
// falling back across generations when the newest one's payload fails
// campaign-level decoding. With no valid generation at all it exits 2,
// naming the file it wanted and why it was rejected.
func restoreFromStore(cfg core.Config, bugName string, st *store.Store, fatalf func(string, ...any)) *core.Campaign {
	if st == nil {
		fatalf("-resume needs -checkpoint-dir to load the checkpoint from")
	}
	var snap *core.CampaignSnapshot
	for snap == nil {
		latest := st.Latest()
		if latest == nil {
			// Legacy layout: a plain <bug>.ckpt.json from before the
			// generation-numbered store.
			legacy := filepath.Join(st.Dir(), bugName+".ckpt.json")
			if data, err := os.ReadFile(legacy); err == nil {
				s, derr := core.DecodeCampaignSnapshot(data)
				if derr != nil {
					fatalf("-resume: %s: %v", legacy, derr)
				}
				snap = s
				break
			}
			msg := fmt.Sprintf("-resume: no valid checkpoint generation for %q in %s", bugName, st.Dir())
			if qs := st.Quarantined(); len(qs) > 0 {
				last := qs[len(qs)-1]
				msg += fmt.Sprintf(" (newest candidate %s quarantined: %v)", last.From, last.Reason)
			}
			fatalf("%s", msg)
		}
		s, err := core.DecodeCampaignSnapshot(latest.Payload)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gist: -resume: %s: %v; falling back to the previous generation\n", latest.Path, err)
			st.Discard(err)
			continue
		}
		snap = s
	}
	camp, err := core.RestoreCampaign(cfg, snap)
	if err != nil {
		fatalf("-resume: %v", err)
	}
	return camp
}

func parseFeatures(s string) core.Features {
	var f core.Features
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "static":
			f.Static = true
		case "cf", "controlflow", "control-flow":
			f.ControlFlow = true
		case "df", "dataflow", "data-flow":
			f.DataFlow = true
		case "extpt", "ptwrite", "extended-pt":
			f.ControlFlow = true
			f.DataFlow = true
			f.ExtendedPT = true
		case "":
		default:
			fmt.Fprintf(os.Stderr, "gist: unknown feature %q\n", part)
			os.Exit(2)
		}
	}
	return f
}
