// Pbzip2: reproduce Fig. 1 of the paper — the failure sketch of the
// pbzip2 use-after-free, where the main thread frees the queue's mutex
// while the consumer thread may still unlock it.
//
// The example also shows what adaptive slice tracking did per iteration:
// how the window grew, what data-flow refinement discovered, and what the
// client runs cost.
//
// Run with: go run ./examples/pbzip2
package main

import (
	"fmt"
	"log"

	"repro/internal/bugs"
	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	bug := bugs.ByName("pbzip2")

	cfg := bug.GistConfig()
	cfg.StopWhen = experiments.DeveloperOracle(bug)

	res, err := core.Run(cfg)
	if err != nil {
		log.Fatalf("gist: %v", err)
	}

	fmt.Println("Adaptive slice tracking:")
	for i, it := range res.Iters {
		fmt.Printf("  iteration %d: sigma=%-3d tracked %3d IR instructions, %d failing / %d successful runs, overhead %.2f%%",
			i+1, it.Sigma, it.TrackedInstrs, it.Failing, it.Successful, it.OverheadPct)
		if len(it.AddedInstrs) > 0 {
			fmt.Printf(", refinement added %d statements", len(it.AddedInstrs))
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println(res.Sketch.Render())

	rel, ord, overall := res.Sketch.Accuracy(bug.Ideal())
	fmt.Printf("Accuracy vs. the ideal sketch: relevance %.1f%%, ordering %.1f%%, overall %.1f%%\n", rel, ord, overall)
	fmt.Printf("Fix: %s\n", bug.Fix)
}
