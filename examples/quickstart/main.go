// Quickstart: diagnose a failure in a program you define yourself.
//
// The example writes a small MiniC program with an input-dependent crash,
// runs the full Gist pipeline against a simulated fleet of endpoints, and
// prints the resulting failure sketch.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/vm"
)

// A tiny service: it parses a request size, builds a response buffer, and
// crashes when a crafted size slips past validation.
const program = `
global int served = 0;
global int rendered = 0;
int respond(int size) {
	int* buf = malloc(size * 8);
	for (int i = 0; i < size; i++) {
		buf[i] = i;
	}
	int render = 0;
	for (int i = 0; i < 800; i++) {
		render = render + (i * 17 + 5) % 13;
	}
	rendered = rendered + render;
	return buf[0];
}
int validate(int size) {
	if (size > 100) { return 100; }
	return size;
}
int main() {
	for (int req = 0; req < 5; req++) {
		int size = input(req);
		int ok = validate(size);
		if (size < 0) { ok = size; }
		served = served + respond(ok);
	}
	return served;
}`

func main() {
	prog, err := ir.Compile("service.mc", program)
	if err != nil {
		log.Fatalf("compile: %v", err)
	}

	// The "production fleet": most requests are fine, one workload
	// carries the crashing negative size (validate misses it; the
	// `size < 0` special case reintroduces it).
	pool := []vm.Workload{
		{Ints: []int64{1, 2, 3, 4, 5}},
		{Ints: []int64{10, 20, 30, 40, 50}},
		{Ints: []int64{7, -3, 9, 11, 13}}, // the bad request
		{Ints: []int64{99, 100, 101, 5, 5}},
	}

	res, err := core.Run(core.Config{
		Prog:         prog,
		Title:        "quickstart service crash",
		WorkloadPool: pool,
		Endpoints:    20,
		MaxSteps:     1_000_000,
		SeedBase:     1,
	})
	if err != nil {
		log.Fatalf("gist: %v", err)
	}

	fmt.Printf("First failure found after %d production runs: %s\n",
		res.DiscoveryRuns, res.Report.Kind)
	fmt.Printf("Static backward slice: %d statements; %d failure recurrences used; avg overhead %.2f%%\n\n",
		res.Slice.LineCount(), res.FailureRecurrences, res.AvgOverheadPct)
	fmt.Println(res.Sketch.Render())
}
