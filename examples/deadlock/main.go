// Deadlock: diagnose a hang. Gist handles failures beyond crashes —
// assertion violations, deadlocks, and hangs (§3.3) — because the VM
// turns them into failure reports with a failing statement and stack.
//
// The program is a classic lock-order inversion: one thread locks A then
// B, the other locks B then A. Some schedules interleave the two lock
// acquisitions and every thread blocks forever; the failure sketch shows
// the two lock statements of the cycle.
//
// Run with: go run ./examples/deadlock
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ir"
)

const program = `
global int giant = 0;
global int cache = 0;
global int hits = 0;
int work(int n) {
	int acc = 0;
	for (int i = 0; i < n; i++) { acc = acc + i % 3; }
	return acc;
}
void request(int arg) {
	lock(&giant);
	int w = work(40);
	lock(&cache);
	hits = hits + 1;
	unlock(&cache);
	unlock(&giant);
}
void evict(int arg) {
	lock(&cache);
	int w = work(40);
	lock(&giant);
	hits = hits - 1;
	unlock(&giant);
	unlock(&cache);
}
int main() {
	int warm = work(2500);
	int r = spawn(request, 0);
	int e = spawn(evict, 0);
	join(r);
	join(e);
	return hits;
}`

func main() {
	prog, err := ir.Compile("locks.mc", program)
	if err != nil {
		log.Fatalf("compile: %v", err)
	}
	res, err := core.Run(core.Config{
		Prog:      prog,
		Title:     "lock-order inversion",
		Endpoints: 30,
		SeedBase:  1,
	})
	if err != nil {
		log.Fatalf("gist: %v", err)
	}
	fmt.Printf("Diagnosed: %s (first failure after %d runs, %d recurrences used)\n\n",
		res.Report.Kind, res.DiscoveryRuns, res.FailureRecurrences)
	fmt.Println(res.Sketch.Render())
	fmt.Println("Fix: acquire giant and cache in a single global order.")
}
