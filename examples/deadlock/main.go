// Deadlock: diagnose a hang. Gist handles failures beyond crashes —
// assertion violations, deadlocks, and hangs (§3.3) — because the VM
// turns them into failure reports with a failing statement and stack.
//
// The program is the registered "deadlock" suite bug: a classic
// lock-order inversion where one thread locks giant then cache, the
// other locks cache then giant. Some schedules interleave the two lock
// acquisitions and every thread blocks forever; the failure sketch
// shows the lock statements of the cycle.
//
// Run with: go run ./examples/deadlock
package main

import (
	"fmt"
	"log"

	"repro/internal/bugs"
	"repro/internal/core"
)

func main() {
	b := bugs.ByName("deadlock")
	if b == nil {
		log.Fatal("deadlock bug missing from the registered suite")
	}
	res, err := core.Run(b.GistConfig())
	if err != nil {
		log.Fatalf("gist: %v", err)
	}
	fmt.Printf("Diagnosed: %s (first failure after %d runs, %d recurrences used)\n\n",
		res.Report.Kind, res.DiscoveryRuns, res.FailureRecurrences)
	fmt.Println(res.Sketch.Render())
	fmt.Printf("Fix: %s.\n", b.Fix)
}
