// Curl: reproduce Fig. 7 of the paper — the failure sketch of Curl bug
// #965, a sequential, input-dependent crash: a URL with unbalanced braces
// leaves urls->current null and strlen(NULL) segfaults.
//
// Sequential bugs exercise a different part of Gist than races: there is
// no cross-thread order to recover, so branch and data-value predictors
// carry the diagnosis (here: "the depth>0 branch was taken" and
// "current == 0").
//
// Run with: go run ./examples/curl
package main

import (
	"fmt"
	"log"

	"repro/internal/bugs"
	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	bug := bugs.ByName("curl")

	fmt.Println("Workload pool (endpoint inputs):")
	for i, wl := range bug.Workloads {
		fmt.Printf("  endpoint class %d: %q\n", i, wl.Strs[0])
	}
	fmt.Println()

	res, err := experiments.Diagnose(bug, core.AllFeatures(), 0)
	if err != nil {
		log.Fatalf("gist: %v", err)
	}

	fmt.Println(res.Sketch.Render())

	fmt.Println("All ranked failure predictors:")
	for i, r := range res.Sketch.AllRanked {
		if i >= 8 {
			fmt.Printf("  ... and %d more\n", len(res.Sketch.AllRanked)-i)
			break
		}
		fmt.Printf("  %d. [%s] %-70s P=%.2f R=%.2f F=%.2f\n", i+1, r.Kind, r.Desc, r.P, r.R, r.F)
	}
	fmt.Printf("\nFix: %s\n", bug.Fix)
}
