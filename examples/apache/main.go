// Apache: reproduce Fig. 8 of the paper — the failure sketch of Apache
// bug #21287, a double free caused by a non-atomic decrement-check-free
// triplet on a cache object's reference count — and contrast Gist's
// always-on cost with the full-tracing alternatives of Fig. 13.
//
// Run with: go run ./examples/apache
package main

import (
	"fmt"
	"log"

	"repro/internal/bugs"
	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	bug := bugs.ByName("apache-3")

	res, err := experiments.Diagnose(bug, core.AllFeatures(), 0)
	if err != nil {
		log.Fatalf("gist: %v", err)
	}
	fmt.Println(res.Sketch.Render())

	fmt.Printf("Gist slice tracking: %.2f%% average client overhead, %d failure recurrences\n\n",
		res.AvgOverheadPct, res.FailureRecurrences)

	// The Fig. 13 framing: what full tracing would have cost instead.
	rows, err := experiments.Fig13([]*bugs.Bug{bug}, 6)
	if err != nil {
		log.Fatalf("fig13: %v", err)
	}
	r := rows[0]
	fmt.Println("Full-tracing alternatives on the same program:")
	fmt.Printf("  Intel PT, whole program:       %7.2f%%\n", r.IntelPTPct)
	fmt.Printf("  record/replay (rr-style):      %7.1f%%  (%.0fx Intel PT)\n", r.MozillaRRPct, r.Ratio)
	if res.AvgOverheadPct > 0 {
		fmt.Printf("  record/replay vs Gist:         %7.0fx\n", r.MozillaRRPct/res.AvgOverheadPct)
	}
	fmt.Printf("\nFix: %s\n", bug.Fix)
}
