// Package repro's root benchmark harness regenerates every table and
// figure of the paper's evaluation as testing.B benchmarks:
//
//	BenchmarkTable1                — Table 1 (slice/sketch sizes, recurrences, overhead)
//	BenchmarkFigSketches           — Figs. 1, 7, 8 (the rendered sketches)
//	BenchmarkFig9Accuracy          — Fig. 9 (relevance/ordering/overall accuracy)
//	BenchmarkFig10Contribution     — Fig. 10 (technique contribution ablation)
//	BenchmarkFig11OverheadVsSlice  — Fig. 11 (overhead vs. tracked slice size)
//	BenchmarkFig12SigmaTradeoff    — Fig. 12 (initial σ vs. accuracy and latency)
//	BenchmarkFig13FullTracing      — Fig. 13 (record/replay vs. Intel PT)
//	BenchmarkOverheadBreakdown     — §5.3 (control-flow vs. data-flow overhead at σ=2)
//	BenchmarkPTSoftwareVsHardware  — §4 (hardware PT vs. PIN-style software tracing)
//	BenchmarkAblation*             — design-choice ablations called out in DESIGN.md
//
// Each benchmark prints the regenerated rows/series once and reports its
// headline numbers as custom benchmark metrics. Run with:
//
//	go test -bench=. -benchmem .
package repro_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/bugs"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/stats"
)

// printOnce prevents repeated table dumps when the benchmark framework
// re-runs a benchmark with a larger b.N.
var printOnce sync.Map

func printTable(key, text string) {
	if _, dup := printOnce.LoadOrStore(key, true); !dup {
		fmt.Printf("\n%s\n", text)
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(nil)
		if err != nil {
			b.Fatal(err)
		}
		printTable("table1", experiments.RenderTable1(rows))
		var rec, ov []float64
		for _, r := range rows {
			rec = append(rec, float64(r.Recurrences))
			ov = append(ov, r.AvgOverheadPct)
		}
		b.ReportMetric(stats.Mean(rec), "recurrences/bug")
		b.ReportMetric(stats.Mean(ov), "overhead-%")
	}
}

func BenchmarkFigSketches(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := experiments.SketchFigures()
		if err != nil {
			b.Fatal(err)
		}
		for _, name := range []string{"pbzip2", "curl", "apache-3"} {
			printTable("sketch-"+name, figs[name])
		}
	}
}

func BenchmarkFig9Accuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig9(nil)
		if err != nil {
			b.Fatal(err)
		}
		printTable("fig9", experiments.RenderFig9(rows))
		rel, ord, overall := experiments.Fig9Averages(rows)
		b.ReportMetric(rel, "relevance-%")
		b.ReportMetric(ord, "ordering-%")
		b.ReportMetric(overall, "overall-%")
	}
}

func BenchmarkFig10Contribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10(nil)
		if err != nil {
			b.Fatal(err)
		}
		printTable("fig10", experiments.RenderFig10(rows))
		var st, df []float64
		for _, r := range rows {
			st = append(st, r.StaticOnly)
			df = append(df, r.PlusDF)
		}
		b.ReportMetric(stats.Mean(st), "static-%")
		b.ReportMetric(stats.Mean(df), "full-%")
	}
}

func BenchmarkFig11OverheadVsSlice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig11(nil, nil, 8)
		if err != nil {
			b.Fatal(err)
		}
		printTable("fig11", experiments.RenderFig11(points))
		b.ReportMetric(points[0].AvgOverheadPct, "sigma2-overhead-%")
		b.ReportMetric(points[len(points)-1].AvgOverheadPct, "max-overhead-%")
	}
}

func BenchmarkFig12SigmaTradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig12(nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		printTable("fig12", experiments.RenderFig12(rows))
		b.ReportMetric(rows[0].AvgLatency, "sigma2-recurrences")
		b.ReportMetric(rows[len(rows)-1].AvgLatency, "sigma32-recurrences")
	}
}

func BenchmarkFig13FullTracing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig13(nil, 8)
		if err != nil {
			b.Fatal(err)
		}
		printTable("fig13", experiments.RenderFig13(rows))
		var pt, rr []float64
		for _, r := range rows {
			pt = append(pt, r.IntelPTPct)
			rr = append(rr, r.MozillaRRPct)
		}
		b.ReportMetric(stats.Mean(pt), "intel-pt-%")
		b.ReportMetric(stats.Mean(rr), "record-replay-%")
	}
}

func BenchmarkOverheadBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Breakdown(nil, 8)
		if err != nil {
			b.Fatal(err)
		}
		printTable("breakdown", experiments.RenderBreakdown(rows))
		var cf, df, full []float64
		for _, r := range rows {
			cf = append(cf, r.CFOnlyPct)
			df = append(df, r.DFOnlyPct)
			full = append(full, r.FullPct)
		}
		b.ReportMetric(stats.Mean(cf), "ctrl-flow-%")
		b.ReportMetric(stats.Mean(df), "data-flow-%")
		b.ReportMetric(stats.Mean(full), "full-%")
	}
}

func BenchmarkPTSoftwareVsHardware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.SoftwarePT(nil, 6)
		printTable("swpt", experiments.RenderSWPT(rows))
		var hw, sw []float64
		for _, r := range rows {
			hw = append(hw, r.HardwarePct)
			sw = append(sw, r.SoftwarePct)
		}
		b.ReportMetric(stats.Mean(hw), "hardware-%")
		b.ReportMetric(stats.Mean(sw), "software-%")
	}
}

// BenchmarkAblationAstGrowth compares AsT's multiplicative window growth
// with additive growth: the latter needs more failure recurrences to reach
// a root-cause-bearing sketch (the latency argument of §3.2.1).
func BenchmarkAblationAstGrowth(b *testing.B) {
	suite := experiments.Suite("pbzip2", "apache-3", "memcached")
	for i := 0; i < b.N; i++ {
		var mul, add []float64
		for _, bug := range suite {
			cfg := bug.GistConfig()
			cfg.StopWhen = experiments.DeveloperOracle(bug)
			resMul, err := core.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			cfg = bug.GistConfig()
			cfg.StopWhen = experiments.DeveloperOracle(bug)
			cfg.SigmaGrowthAdd = 2 // linear growth: sigma += 2
			resAdd, err := core.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			mul = append(mul, float64(resMul.FailureRecurrences))
			add = append(add, float64(resAdd.FailureRecurrences))
		}
		printTable("ablation-growth", fmt.Sprintf(
			"Ablation: AsT window growth\n  multiplicative (paper): %.1f recurrences avg\n  additive (+2):          %.1f recurrences avg\n",
			stats.Mean(mul), stats.Mean(add)))
		b.ReportMetric(stats.Mean(mul), "multiplicative-recurrences")
		b.ReportMetric(stats.Mean(add), "additive-recurrences")
	}
}

// BenchmarkAblationFBeta compares the paper's precision-favoring β=0.5
// ranking with β=1: the top predictor's precision is what the developer
// acts on, so lower precision means misleading sketches.
func BenchmarkAblationFBeta(b *testing.B) {
	suite := experiments.Suite("pbzip2", "curl", "apache-1", "apache-3")
	for i := 0; i < b.N; i++ {
		topPrecision := func(beta float64) float64 {
			var ps []float64
			for _, bug := range suite {
				cfg := bug.GistConfig()
				cfg.Beta = beta
				cfg.StopWhen = experiments.DeveloperOracle(bug)
				res, err := core.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Sketch.AllRanked) > 0 {
					ps = append(ps, res.Sketch.AllRanked[0].P)
				}
			}
			return stats.Mean(ps)
		}
		p05 := topPrecision(0.5)
		p10 := topPrecision(1.0)
		printTable("ablation-beta", fmt.Sprintf(
			"Ablation: F-measure beta\n  beta=0.5 (paper): top-predictor precision %.2f\n  beta=1.0:         top-predictor precision %.2f\n",
			p05, p10))
		b.ReportMetric(p05, "beta0.5-precision")
		b.ReportMetric(p10, "beta1.0-precision")
	}
}

// BenchmarkAblationAliasFreeSlicing quantifies the paper's no-alias-
// analysis design: how many sketch statements had to be discovered by
// runtime data flow because the static slice could not see them.
func BenchmarkAblationAliasFreeSlicing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var refined, sliceSizes []float64
		for _, bug := range bugs.All() {
			res, err := experiments.Diagnose(bug, core.AllFeatures(), 0)
			if err != nil {
				b.Fatal(err)
			}
			refined = append(refined, float64(len(res.Sketch.AddedByRefinement)))
			sliceSizes = append(sliceSizes, float64(res.Slice.InstrCount()))
		}
		printTable("ablation-alias", fmt.Sprintf(
			"Ablation: alias-free slicing\n  statements recovered by data-flow refinement: %.1f avg/bug\n  (final slice size %.1f IR instructions avg)\n",
			stats.Mean(refined), stats.Mean(sliceSizes)))
		b.ReportMetric(stats.Mean(refined), "refined-instrs/bug")
	}
}

// BenchmarkAblationExtendedPT compares data flow via hardware watchpoints
// (the shipping design) with the §6 extended-PT hardware extension
// (PTWRITE-style data packets, tracing always on): the extension removes
// the debug-register budget at the price of full-trace overhead.
func BenchmarkAblationExtendedPT(b *testing.B) {
	suite := experiments.Suite("pbzip2", "memcached", "apache-3")
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ExtendedPT(suite)
		if err != nil {
			b.Fatal(err)
		}
		printTable("ablation-extpt", experiments.RenderExtPT(rows))
		var wpOv, extOv, wpAcc, extAcc []float64
		for _, r := range rows {
			wpOv = append(wpOv, r.WPOverhead)
			extOv = append(extOv, r.ExtOverhead)
			wpAcc = append(wpAcc, r.WPAccuracy)
			extAcc = append(extAcc, r.ExtAccuracy)
		}
		b.ReportMetric(stats.Mean(wpOv), "watchpoint-overhead-%")
		b.ReportMetric(stats.Mean(extOv), "extpt-overhead-%")
		b.ReportMetric(stats.Mean(wpAcc), "watchpoint-accuracy-%")
		b.ReportMetric(stats.Mean(extAcc), "extpt-accuracy-%")
	}
}

// BenchmarkSingleDiagnosis measures the end-to-end cost of one complete
// pbzip2 diagnosis (the pipeline a Gist server executes per failure).
func BenchmarkSingleDiagnosis(b *testing.B) {
	bug := bugs.ByName("pbzip2")
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Diagnose(bug, core.AllFeatures(), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetScaling runs the pbzip2 diagnosis at increasing fleet
// worker-pool widths. Output is byte-identical at every width (the
// determinism tests assert that); this measures only the wall-clock
// effect, which is bounded by GOMAXPROCS.
func BenchmarkFleetScaling(b *testing.B) {
	bug := bugs.ByName("pbzip2")
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := bug.GistConfig()
				cfg.Features = core.AllFeatures()
				cfg.Workers = workers
				cfg.StopWhen = experiments.DeveloperOracle(bug)
				res, err := core.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.TotalRuns+res.DiscoveryRuns), "runs/diagnosis")
			}
		})
	}
}
